"""Command-line entry point for the policy-serving subsystem.

::

    python -m repro.serving publish --registry ./registry --preset small
    python -m repro.serving serve --registry ./registry --preset small --port 8787
    python -m repro.serving workload --registry ./registry --preset small \
        --requests 200 --fallback-fraction 0.2 \
        --inject-faults "exception=0.1,hangs=2,corrupt=3,seed=7"

``publish`` precomputes a preset's policy table and publishes it into the
registry (idempotent, content-addressed).  ``serve`` runs the HTTP server
until interrupted.  ``workload`` is the self-contained smoke/acceptance
driver: it starts a server in-process, pushes a mixed table-hit /
planner-fallback request stream through real HTTP clients (optionally under
a seeded chaos plan), validates **every** response, and prints the counter
block CI greps — exiting 0 only when 100 % of requests received a valid
decision.

Exit codes: 0 success, 1 workload responses invalid, 2 configuration
error, 130 interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import math
import sys
from dataclasses import replace
from typing import Optional, Sequence

from repro.api.config import SenderConfig
from repro.api.policy import precompute_policy_table
from repro.errors import ConfigurationError, ReproError
from repro.inference.prior import figure3_prior, single_link_prior
from repro.runner.faults import FaultPlan
from repro.serving.chaos import ServingFaultInjector
from repro.serving.fallback import TIERS, DecisionService
from repro.serving.registry import PolicyTableRegistry
from repro.serving.server import PolicyClient, PolicyServer

#: Preset table-building recipes: (config, precompute kwargs).  ``small``
#: is the CI-speed recipe (the test suite's fast-config pattern);
#: ``figure3`` is the paper-calibration table.
PRESETS = ("small", "figure3")


def preset_config(name: str) -> tuple[SenderConfig, dict]:
    if name == "small":
        config = SenderConfig(
            prior=single_link_prior(link_rate_points=2, fill_points=1),
            top_k=4,
            max_hypotheses=32,
            belief_backend="vectorized",
            rollout_backend="vectorized",
            policy="table",
        )
        return config, {"pilot_duration": 5.0, "burst_levels": (0, 2)}
    if name == "figure3":
        config = SenderConfig(
            prior=figure3_prior(
                link_rate_points=2, cross_fraction_points=2, loss_points=2,
                buffer_points=2, fill_points=1,
            ),
            belief_backend="vectorized",
            rollout_backend="vectorized",
            policy="table",
        )
        return config, {"pilot_duration": 10.0}
    raise ConfigurationError(
        f"unknown preset {name!r}; known presets: {', '.join(PRESETS)}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Publish, serve, and smoke-test precomputed policy tables.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--registry", required=True, metavar="DIR",
            help="policy-table registry directory",
        )
        sub.add_argument(
            "--preset", choices=PRESETS, default="small",
            help="table/config preset (default small)",
        )
        sub.add_argument("--seed", type=int, default=1, help="precompute seed")

    publish = commands.add_parser(
        "publish", help="precompute a preset's policy table and publish it"
    )
    add_common(publish)

    serve = commands.add_parser("serve", help="serve decisions over loopback HTTP")
    add_common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--max-pending", type=int, default=32,
        help="admission-control bound on in-flight decisions (default 32)",
    )
    serve.add_argument(
        "--planner-timeout", type=float, default=2.0,
        help="seconds a live-planning fallback may run (default 2)",
    )

    workload = commands.add_parser(
        "workload",
        help="start a server in-process and drive a validated mixed workload",
    )
    add_common(workload)
    workload.add_argument(
        "--requests", type=int, default=100, help="requests to issue (default 100)"
    )
    workload.add_argument(
        "--fallback-fraction", type=float, default=0.0, metavar="F",
        help="fraction of requests aimed off-table at the live-planner tier",
    )
    workload.add_argument(
        "--concurrency", type=int, default=4,
        help="concurrent client connections (default 4)",
    )
    workload.add_argument(
        "--max-pending", type=int, default=32,
        help="admission-control bound on in-flight decisions (default 32)",
    )
    workload.add_argument(
        "--planner-timeout", type=float, default=1.0,
        help="seconds a live-planning fallback may run (default 1)",
    )
    workload.add_argument(
        "--inject-faults", default=None, metavar="PLAN",
        help=(
            "chaos-test the stream with a seeded fault plan, e.g. "
            "'exception=0.1,hangs=2,corrupt=3,seed=7' (serving kinds: "
            "exception, hang, corrupt; hang_seconds is capped near the "
            "planner timeout unless set explicitly)"
        ),
    )
    return parser


# ------------------------------------------------------------------- commands


def _cmd_publish(args: argparse.Namespace) -> int:
    config, precompute_kwargs = preset_config(args.preset)
    table = precompute_policy_table(config, seed=args.seed, **precompute_kwargs)
    registry = PolicyTableRegistry(args.registry)
    path = registry.publish(table)
    digest = registry.current_digest(table.fingerprint)
    print(f"published preset {args.preset!r}: {table.size} entries")
    print(f"fingerprint: {table.fingerprint}")
    print(f"version: {digest} -> {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    config, _ = preset_config(args.preset)
    registry = PolicyTableRegistry(args.registry)
    service = DecisionService(
        registry, [config], planner_timeout=args.planner_timeout
    )
    server = PolicyServer(
        service, host=args.host, port=args.port, max_pending=args.max_pending
    )

    async def run() -> None:
        await server.start()
        print(f"serving on http://{server.host}:{server.port} "
              f"(fingerprint {config.fingerprint()})")
        sys.stdout.flush()
        await server.serve_forever()

    asyncio.run(run())
    return 0


def _workload_signatures(
    table, requests: int, fallback_fraction: float
) -> list[tuple]:
    """The request stream: table signatures, a slice retargeted off-table.

    Off-table requests take a real signature and push its queue-backlog
    component beyond anything the table holds, so tier 1 misses and tier 2
    must plan live on the reconstructed belief — the degradation path the
    workload is there to exercise.
    """
    known = table.signatures()
    if not known:
        raise ConfigurationError(
            "the published table is empty; re-publish the preset"
        )
    max_rounds = max(
        max((row[3] for row in signature), default=0) for signature in known
    )
    stream: list[tuple] = []
    fallback_every = 1 / fallback_fraction if fallback_fraction > 0 else math.inf
    next_fallback = fallback_every
    for index in range(requests):
        base = known[index % len(known)]
        if index + 1 >= next_fallback:
            next_fallback += fallback_every
            retargeted = tuple(
                (row[0], row[1], row[2], max_rounds + 1 + (index % 3), True)
                for row in base
            )
            stream.append(retargeted)
        else:
            stream.append(base)
    return stream


def _valid_response(payload: dict) -> bool:
    if payload.get("status") not in ("ok", "overloaded"):
        return False
    if payload.get("tier") not in TIERS:
        return False
    decision = payload.get("decision")
    if not isinstance(decision, dict):
        return False
    delay = decision.get("delay")
    return isinstance(delay, (int, float)) and math.isfinite(delay) and delay >= 0


def _cmd_workload(args: argparse.Namespace) -> int:
    if args.requests < 1:
        raise ConfigurationError("--requests must be at least 1")
    if not 0.0 <= args.fallback_fraction <= 1.0:
        raise ConfigurationError("--fallback-fraction must be in [0, 1]")
    config, precompute_kwargs = preset_config(args.preset)
    registry = PolicyTableRegistry(args.registry)
    table = registry.lookup(config.fingerprint())
    if table is None:
        raise ConfigurationError(
            f"no published table for preset {args.preset!r} in {args.registry}; "
            "run 'python -m repro.serving publish' first"
        )

    injector: Optional[ServingFaultInjector] = None
    if args.inject_faults:
        plan = FaultPlan.parse(args.inject_faults)
        if "hang_seconds" not in args.inject_faults:
            # An abandoned hang outlives the workload on its daemon thread;
            # keep the default stall just long enough to trip the planner
            # timeout so the process exits as soon as the stream drains.
            plan = replace(plan, hang_seconds=args.planner_timeout * 3)
        injector = ServingFaultInjector(plan, args.requests)

    service = DecisionService(
        registry,
        [config],
        planner_timeout=args.planner_timeout,
        injector=injector,
    )
    server = PolicyServer(service, max_pending=args.max_pending)
    signatures = _workload_signatures(table, args.requests, args.fallback_fraction)
    fingerprint = config.fingerprint()
    invalid = 0
    tier_counts = dict.fromkeys(TIERS, 0)
    overloaded = 0

    async def run() -> None:
        nonlocal invalid, overloaded
        await server.start()
        queue: asyncio.Queue[tuple] = asyncio.Queue()
        for signature in signatures:
            queue.put_nowait(signature)

        async def worker() -> None:
            nonlocal invalid, overloaded
            client = PolicyClient(port=server.port)
            try:
                while True:
                    try:
                        signature = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    payload = await client.decide(fingerprint, signature)
                    if _valid_response(payload):
                        tier_counts[payload["tier"]] += 1
                        if payload["status"] == "overloaded":
                            overloaded += 1
                    else:
                        invalid += 1
            finally:
                await client.close()

        await asyncio.gather(*(worker() for _ in range(max(1, args.concurrency))))
        await server.stop()

    asyncio.run(run())

    counters = service.counters_snapshot()
    print(f"workload: {args.requests} request(s), preset {args.preset!r}"
          + (f", faults {injector.plan.describe()!r}" if injector else ""))
    for name in (
        "requests", "table_hits", "table_misses", "table_corrupt",
        "planner_fallbacks", "planner_failures", "breaker_open",
        "default_served", "shed",
    ):
        print(f"{name}: {counters[name]}")
    print(f"tiers: " + ", ".join(f"{tier}={tier_counts[tier]}" for tier in TIERS))
    print(f"overloaded: {overloaded}")
    print(f"errors: {invalid + counters['errors']}")
    return 0 if invalid == 0 and counters["errors"] == 0 else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "publish":
            return _cmd_publish(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_workload(args)
    except (ConfigurationError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
