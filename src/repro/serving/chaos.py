"""Chaos mode for the serving layer: seeded per-request fault injection.

Reuses the runner's :class:`~repro.runner.faults.FaultPlan` vocabulary, but
resolved over *request indices* instead of sweep grid points
(:meth:`~repro.runner.faults.FaultPlan.assign_keys`), and limited to the
kinds that make sense inside a long-lived server:

* ``exception`` — the live-planner call for that request raises;
* ``hang`` — the live-planner call stalls ``hang_seconds`` (long enough to
  trip the service's ``planner_timeout`` and feed the circuit breaker);
* ``corrupt`` — that request's table read fails integrity validation, as
  if it had raced a torn write.  Interposed in memory, per request — the
  on-disk artifact stays intact, so the *expected* tier counters are an
  exact function of the plan rather than of quarantine side effects.

``kill`` / ``kill_sweep`` are process-level faults with no per-request
analogue in a server; a plan carrying them is rejected eagerly.

Because the plan is seeded and resolution is deterministic, the serving
acceptance test can walk the same assignment the injector uses and predict
every counter — 100 % valid decisions is then a *checked* claim, not a
hopeful one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.runner.faults import FaultAssignment, FaultPlan, InjectedFaultError

__all__ = ["RequestFaults", "SERVING_FAULT_KINDS", "ServingFaultInjector"]

#: Fault kinds a serving chaos plan may carry.
SERVING_FAULT_KINDS = ("exception", "hang", "corrupt")


@dataclass(frozen=True)
class RequestFaults:
    """The faults armed around one request: at most one of each family."""

    #: ``"exception"`` / ``"hang"`` to fire inside the planner call, or None.
    planner_kind: Optional[str]
    #: Whether this request's table read is corrupted.
    corrupt: bool
    hang_seconds: float

    def perform_planner_fault(self) -> None:
        """Fire the armed planner fault (no-op when none is armed)."""
        if self.planner_kind == "exception":
            raise InjectedFaultError("injected serving fault")
        if self.planner_kind == "hang":
            time.sleep(self.hang_seconds)


#: The no-fault request (what un-armed indices receive).
NO_REQUEST_FAULTS = RequestFaults(planner_kind=None, corrupt=False, hang_seconds=0.0)


class ServingFaultInjector:
    """A :class:`FaultPlan` resolved over a fixed-length request stream.

    Parameters
    ----------
    plan:
        The chaos plan (``exception`` rate, ``hangs`` / ``corrupt`` counts,
        targeted ``kind@index`` entries).  Kill kinds are rejected.
    requests:
        Length of the request stream the plan is resolved against.
        Requests beyond this window run fault-free — the injector is for
        bounded acceptance workloads, not open-ended sabotage.
    """

    def __init__(self, plan: FaultPlan, requests: int) -> None:
        if requests < 1:
            raise ConfigurationError(
                f"a serving fault injector needs at least 1 request, got {requests!r}"
            )
        forbidden = [t.kind for t in plan.targets if t.kind not in SERVING_FAULT_KINDS]
        if plan.kills:
            forbidden.append("kill")
        if forbidden:
            raise ConfigurationError(
                f"fault kind(s) {sorted(set(forbidden))} have no per-request "
                f"meaning in the serving layer; usable kinds: "
                f"{', '.join(SERVING_FAULT_KINDS)}"
            )
        self.plan = plan
        self.requests = requests
        self.assignment: FaultAssignment = plan.assign_keys(
            [f"request:{i}" for i in range(requests)]
        )

    def faults_for(self, index: int) -> RequestFaults:
        """The faults armed around request ``index`` (first attempt)."""
        kind = self.assignment.fault_for(index, 0)
        return RequestFaults(
            planner_kind=kind,
            corrupt=index in self.assignment.corrupt,
            hang_seconds=self.assignment.hang_seconds,
        )

    def expected_planner_faults(self) -> Sequence[int]:
        """Request indices whose planner call will fail (sorted)."""
        return sorted(
            index
            for index in self.assignment.execution
            if self.assignment.fault_for(index, 0) in ("exception", "hang")
        )

    def expected_corrupt(self) -> Sequence[int]:
        """Request indices whose table read will be corrupted (sorted)."""
        return sorted(self.assignment.corrupt)
