"""The tiered decision fallback chain: table → live planner → safe default.

Every request is answered by the first tier that can produce a decision,
so every failure mode degrades to a *correct (if slower or coarser)*
answer instead of an error:

1. **Policy-table lookup** — the served
   :class:`~repro.api.policy.PolicyTable` version for the request's config
   fingerprint, consulted at the request's decision signature.  Integrity
   failures quarantine the artifact and read as a miss.
2. **Live planning** — the config's own
   :class:`~repro.core.planner.ExpectedUtilityPlanner` run on a canonical
   belief reconstructed from the signature (:func:`belief_from_signature`),
   bounded by a per-call timeout and guarded by a per-config
   :class:`~repro.serving.breaker.CircuitBreaker`.
3. **Safe default** — the documented conservative action (see
   :func:`safe_default_decision`): wait one packet service time at the
   slowest link speed the config's prior entertains.  The paper breaks
   planning ties toward the longer delay so an indifferent sender does not
   flood the network (§3.2); the safe default extends that rule to the case
   where utilities cannot be evaluated at all — the most cautious answer
   that still makes forward progress.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.api.config import SenderConfig
from repro.api.policy import decision_to_payload
from repro.core.actions import Action
from repro.core.planner import Decision, ExpectedUtilityPlanner
from repro.errors import CircuitOpenError, ServingError
from repro.inference.belief import BeliefState
from repro.inference.hypothesis import Hypothesis
from repro.serving.breaker import CircuitBreaker
from repro.serving.registry import PolicyTableRegistry

__all__ = [
    "DecisionService",
    "ServedDecision",
    "ServingCounters",
    "belief_from_signature",
    "safe_default_decision",
]

#: Serving tiers, in degradation order.
TIERS = ("table", "planner", "default")

#: Weight floor applied when reconstructing a belief from a signature —
#: signature weights are rounded to 3 decimals, so a top-k tail entry can
#: arrive as exactly 0.0 and must not degenerate the ensemble.
_WEIGHT_FLOOR = 1e-6

#: Fallback safe-default delay (seconds) when a config is unknown: one
#: default-size packet at the slowest link speed any built-in prior
#: entertains (8 kbit/s, the single-link prior's floor).
DEFAULT_SAFE_DELAY = 1_500.0 / 8_000.0


def belief_from_signature(
    signature: tuple,
    *,
    queue_resolution_bits: float,
    now: float = 0.0,
) -> BeliefState:
    """The canonical belief state a decision signature describes.

    A :meth:`~repro.inference.belief.BeliefState.decision_signature` is, by
    construction, everything the planner's decision depends on: per top
    hypothesis the parameter assignment, the (rounded) weight, the gate
    state, the queue occupancy rounded to ``queue_resolution_bits``, and
    whether the link is busy.  This inverts it into a concrete ensemble —
    one :class:`~repro.inference.hypothesis.Hypothesis` per signature row,
    with the queue refilled to the row's occupancy — so tier 2 can run the
    *live planner* on exactly the state the table would have been keyed by.

    Canonicalization notes: occupancy is refilled as buffer fill (a busy
    row with zero rounded backlog gets a quarter-resolution filler so the
    link is genuinely transmitting), and renormalization may move a rounded
    weight by up to half an ulp of the 3-decimal rounding.  Both are below
    the signature's own resolution — the digest was lossy first.
    """
    if not signature:
        raise ServingError("cannot reconstruct a belief from an empty signature")
    hypotheses: list[Hypothesis] = []
    weights: list[float] = []
    for row in signature:
        try:
            params_items, weight, gate_on, backlog_rounds, busy = row
            params = dict(params_items)
        except (TypeError, ValueError) as error:
            raise ServingError(f"malformed signature row {row!r}: {error}") from error
        capacity = float(params["buffer_capacity_bits"])
        fill = float(backlog_rounds) * queue_resolution_bits
        if busy and fill <= 0.0:
            fill = min(queue_resolution_bits * 0.25, capacity)
        if not busy:
            fill = 0.0
        fill = min(fill, capacity)
        hypothesis = Hypothesis.from_params(
            params, start_time=now, initial_fill_bits=fill
        )
        hypothesis.model.set_gate(bool(gate_on), now)
        hypotheses.append(hypothesis)
        weights.append(max(float(weight), _WEIGHT_FLOOR))
    return BeliefState(hypotheses, weights)


def safe_default_decision(config: Optional[SenderConfig] = None) -> Decision:
    """The documented tier-3 action: the most conservative useful send.

    With a known config, the delay is one packet service time at the
    *slowest* link speed in the config's prior support — under every
    hypothesis the sender entertains, waiting that long cannot build queue.
    Without a config (or a prior), :data:`DEFAULT_SAFE_DELAY` applies the
    same rule at the built-in priors' global floor.  Provenance: the
    planner already breaks ties toward longer delays so an indifferent
    sender does not flood the network (§3.2); this is that rule, applied
    when no utilities can be evaluated at all.
    """
    delay = DEFAULT_SAFE_DELAY
    if config is not None:
        rates = []
        if config.prior is not None:
            rates = [
                assignment["link_rate_bps"]
                for assignment, _ in config.prior.combinations()
                if assignment.get("link_rate_bps", 0) > 0
            ]
        slowest = min(rates) if rates else 8_000.0
        delay = config.packet_bits / slowest
    return Decision(action=Action(delay))


class _DaemonThreadExecutor:
    """Thread-per-call executor whose threads never block interpreter exit.

    ``concurrent.futures.ThreadPoolExecutor`` joins its workers at
    interpreter shutdown, so a single abandoned hang — a tier-2 planner
    wedged for real, or stalled by an injected ``hang`` fault — would hold
    the whole process hostage for the hang's duration, and a pool of
    bounded width could be starved into nondeterministic timeouts by a few
    leaked hangs.  Daemon threads make abandonment safe and independent:
    the timed-out call keeps running harmlessly off to the side and dies
    with the process.  Planner calls are heavyweight (milliseconds to
    seconds), so thread-per-call overhead is noise, and admission control
    bounds how many can be in flight.
    """

    def submit(self, fn) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                result = fn()
            except BaseException as error:  # noqa: BLE001 - relayed via future
                future.set_exception(error)
            else:
                future.set_result(result)

        threading.Thread(
            target=run, daemon=True, name="repro-serving-planner"
        ).start()
        return future


@dataclass
class ServingCounters:
    """Per-tier request accounting, surfaced in responses and ``/metrics``.

    ``table_hits`` + ``planner_fallbacks`` + ``default_served`` equals
    ``requests`` minus ``shed`` (a shed request is answered with the safe
    default but counted only as shed).  ``breaker_open`` counts requests
    that skipped the planner tier because the circuit was open (each also
    counts in ``default_served``); ``table_corrupt`` counts tier-1 misses
    caused by integrity failures (quarantines plus injected corruption);
    ``planner_failures`` counts tier-2 attempts that errored or timed out.
    ``errors`` counts requests that produced no decision at all — by
    construction it stays zero unless the safe-default tier itself raises.
    """

    requests: int = 0
    table_hits: int = 0
    table_misses: int = 0
    table_corrupt: int = 0
    planner_fallbacks: int = 0
    planner_failures: int = 0
    breaker_open: int = 0
    default_served: int = 0
    shed: int = 0
    errors: int = 0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "table_corrupt": self.table_corrupt,
            "planner_fallbacks": self.planner_fallbacks,
            "planner_failures": self.planner_failures,
            "breaker_open": self.breaker_open,
            "default_served": self.default_served,
            "shed": self.shed,
            "errors": self.errors,
        }


@dataclass(frozen=True)
class ServedDecision:
    """One answered request: the decision, its tier, and bookkeeping."""

    status: str  # "ok" | "overloaded"
    tier: str  # one of TIERS
    decision: Decision
    fingerprint: str
    known_config: bool
    table_digest: Optional[str] = None

    def to_payload(self, counters: Optional[dict] = None) -> dict:
        """The wire form of this response."""
        payload = {
            "status": self.status,
            "tier": self.tier,
            "fingerprint": self.fingerprint,
            "known_config": self.known_config,
            "decision": decision_to_payload(self.decision),
        }
        if self.table_digest is not None:
            payload["table_digest"] = self.table_digest
        if counters is not None:
            payload["counters"] = counters
        return payload


class DecisionService:
    """The fallback chain behind every transport (HTTP server, in-process).

    Parameters
    ----------
    registry:
        The :class:`~repro.serving.registry.PolicyTableRegistry` tier 1
        reads from (hot-reloadable, shared between instances).
    configs:
        The :class:`~repro.api.config.SenderConfig` objects this server
        can plan live for, keyed by fingerprint.  Fingerprints outside
        this set still get tier-1 answers when a table is published, and
        the global safe default otherwise.
    planner_timeout:
        Seconds a live planning call may run before it is abandoned and
        counted as a failure (the breaker's trip signal for hangs).
    breaker_threshold / breaker_cooldown / breaker_cooldown_cap / breaker_seed:
        Per-config :class:`~repro.serving.breaker.CircuitBreaker` shape.
    injector:
        Optional :class:`~repro.serving.chaos.ServingFaultInjector`; chaos
        mode for the acceptance tests and ``--inject-faults``.

    Thread-safe; one instance serves arbitrarily many transports.  Live
    planning runs on daemon threads (:class:`_DaemonThreadExecutor`), so an
    abandoned hang never starves later requests or blocks process exit.
    """

    def __init__(
        self,
        registry: PolicyTableRegistry,
        configs: Iterable[SenderConfig] = (),
        *,
        planner_timeout: float = 2.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        breaker_cooldown_cap: float = 300.0,
        breaker_seed: int = 0,
        injector=None,
    ) -> None:
        self.registry = registry
        self.configs = {config.fingerprint(): config for config in configs}
        self.planner_timeout = planner_timeout
        self.injector = injector
        self.counters = ServingCounters()
        self._lock = threading.Lock()
        self._planners: dict[str, ExpectedUtilityPlanner] = {}
        self._defaults: dict[str, Decision] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_shape = dict(
            failure_threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            cooldown_cap=breaker_cooldown_cap,
            seed=breaker_seed,
        )
        self._pool = _DaemonThreadExecutor()
        self._started = time.monotonic()
        self._request_index = 0

    # ------------------------------------------------------------- inspection

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per known config fingerprint."""
        with self._lock:
            return {key: breaker.state for key, breaker in self._breakers.items()}

    def breaker_for(self, fingerprint: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one config's planner."""
        with self._lock:
            breaker = self._breakers.get(fingerprint)
            if breaker is None:
                breaker = CircuitBreaker(fingerprint, **self._breaker_shape)
                self._breakers[fingerprint] = breaker
            return breaker

    def close(self) -> None:
        """Nothing to tear down: planner threads are daemons and die with
        the process; abandoned hangs run out harmlessly off to the side."""

    # ----------------------------------------------------------------- tiers

    def _planner_for(self, config: SenderConfig) -> ExpectedUtilityPlanner:
        fingerprint = config.fingerprint()
        with self._lock:
            planner = self._planners.get(fingerprint)
            if planner is None:
                planner = config.build_planner()
                self._planners[fingerprint] = planner
            return planner

    def _default_for(self, fingerprint: str) -> Decision:
        with self._lock:
            decision = self._defaults.get(fingerprint)
            if decision is None:
                decision = safe_default_decision(self.configs.get(fingerprint))
                self._defaults[fingerprint] = decision
            return decision

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self.counters, counter, getattr(self.counters, counter) + amount)

    def counters_snapshot(self) -> dict:
        with self._lock:
            return self.counters.snapshot()

    # ---------------------------------------------------------------- decide

    def decide(
        self, fingerprint: str, signature: tuple, now: float = 0.0
    ) -> ServedDecision:
        """Answer one decision lookup through the fallback chain.

        Never raises for a servable request: every internal failure —
        corrupt table, planner exception, timeout, open breaker — degrades
        to the next tier, and tier 3 cannot fail.  (Malformed *requests*
        are the transport's problem; see the server's 400 handling.)
        """
        with self._lock:
            self.counters.requests += 1
            request_index = self._request_index
            self._request_index += 1
        faults = (
            self.injector.faults_for(request_index) if self.injector is not None else None
        )

        # Tier 1: registry table lookup at the request signature.
        table = None
        digest = None
        if faults is not None and faults.corrupt:
            # Injected table-store corruption: the artifact this request
            # read failed its integrity check.  The on-disk file is left
            # alone so the fault stays per-request (a *real* corrupt file
            # is quarantined by the registry and affects every reader).
            self._count("table_corrupt")
        else:
            before = self.registry.corrupt
            table = self.registry.lookup(fingerprint)
            if self.registry.corrupt > before:
                self._count("table_corrupt", self.registry.corrupt - before)
        if table is not None:
            decision = table.decision_for(signature)
            if decision is not None:
                self._count("table_hits")
                digest = self.registry.current_digest(fingerprint)
                return ServedDecision(
                    status="ok",
                    tier="table",
                    decision=decision,
                    fingerprint=fingerprint,
                    known_config=fingerprint in self.configs,
                    table_digest=digest,
                )
        self._count("table_misses")

        # Tier 2: live planning behind the breaker.
        config = self.configs.get(fingerprint)
        if config is not None:
            resolution = (
                table.queue_resolution_bits
                if table is not None
                else config.policy_resolution_bits
            )
            try:
                decision = self._plan_live(
                    config, signature, now, resolution, faults
                )
            except CircuitOpenError:
                self._count("breaker_open")
            except Exception:  # noqa: BLE001 - every failure degrades
                self._count("planner_failures")
            else:
                self._count("planner_fallbacks")
                return ServedDecision(
                    status="ok",
                    tier="planner",
                    decision=decision,
                    fingerprint=fingerprint,
                    known_config=True,
                )

        # Tier 3: the safe default always answers.
        self._count("default_served")
        return ServedDecision(
            status="ok",
            tier="default",
            decision=self._default_for(fingerprint),
            fingerprint=fingerprint,
            known_config=config is not None,
        )

    def shed(self, fingerprint: str) -> ServedDecision:
        """Answer a load-shed request: explicit overload, safe default.

        Admission control calls this instead of :meth:`decide`; the client
        still receives a valid (tier-3) decision, but the response is
        marked ``overloaded`` so well-behaved callers back off.
        """
        with self._lock:
            self.counters.requests += 1
            self.counters.shed += 1
        return ServedDecision(
            status="overloaded",
            tier="default",
            decision=self._default_for(fingerprint),
            fingerprint=fingerprint,
            known_config=fingerprint in self.configs,
        )

    def _plan_live(
        self,
        config: SenderConfig,
        signature: tuple,
        now: float,
        queue_resolution_bits: float,
        faults,
    ) -> Decision:
        breaker = self.breaker_for(config.fingerprint())
        if not breaker.allow():
            raise CircuitOpenError(
                f"planner breaker for {config.fingerprint()} is {breaker.state}"
            )
        planner = self._planner_for(config)

        def plan() -> Decision:
            if faults is not None:
                faults.perform_planner_fault()
            belief = belief_from_signature(
                signature, queue_resolution_bits=queue_resolution_bits, now=now
            )
            return planner.decide(belief, now)

        future = self._pool.submit(plan)
        try:
            decision = future.result(timeout=self.planner_timeout)
        except BaseException:
            # Timeout, injected exception, or a genuine planner bug: the
            # breaker counts it; an abandoned hang keeps its daemon thread
            # until the stall ends, without starving later requests.
            future.cancel()
            breaker.record_failure()
            raise
        breaker.record_success()
        return decision
