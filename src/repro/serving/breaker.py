"""Per-config circuit breaker around the live-planner fallback tier.

A wedged or crashing planner must not drag every request through its
timeout: after ``failure_threshold`` consecutive failures the breaker
*opens* and the fallback chain skips straight to the safe-default tier.
After a cooldown the breaker goes *half-open* and admits exactly one probe
request; a successful probe closes the circuit, a failed one re-opens it
with a longer cooldown.

Cooldowns reuse the supervised runner's backoff machinery
(:meth:`repro.runner.supervise.Supervision.delay`): exponential growth per
consecutive trip with **deterministic seeded jitter**, so a replayed chaos
run schedules its probes identically — the property that makes the serving
acceptance test's counters exactly predictable from the fault plan.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.runner.supervise import Supervision

__all__ = ["CircuitBreaker"]

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Trip on consecutive failures; recover through seeded half-open probes.

    Parameters
    ----------
    key:
        Identity folded into the jitter stream (the serving layer passes
        the config fingerprint), so distinct configs probe at distinct,
        deterministic offsets instead of thundering together.
    failure_threshold:
        Consecutive failures that open the circuit.
    cooldown / cooldown_cap:
        Base and cap of the open-state cooldown; trip ``n`` waits
        ``cooldown * 2**(n-1)`` jittered, exactly the supervised runner's
        retry-backoff rule.
    seed:
        Seeds the jitter stream (deterministic across processes).
    clock:
        Injectable monotonic clock (tests drive a fake one).
    """

    def __init__(
        self,
        key: str = "",
        *,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        cooldown_cap: float = 300.0,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if cooldown <= 0:
            raise ConfigurationError("cooldown must be positive")
        self.key = key
        self.failure_threshold = failure_threshold
        self._backoff = Supervision(
            backoff=cooldown, backoff_cap=cooldown_cap, jitter=0.5, seed=seed
        )
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._trips = 0
        self._retry_at = 0.0
        self._probing = False
        #: Times the breaker has opened (cumulative, surfaced in /metrics).
        self.opens = 0

    # ------------------------------------------------------------- inspection

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (without advancing)."""
        with self._lock:
            return self._state

    def cooldown_remaining(self) -> float:
        """Seconds until the next half-open probe (0.0 unless open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._retry_at - self._clock())

    # ---------------------------------------------------------------- guards

    def allow(self) -> bool:
        """Whether the protected call may run now.

        Closed admits everything.  Open admits nothing until the cooldown
        expires, at which point the breaker turns half-open and admits
        exactly one probe; further calls are refused until that probe
        reports via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN and self._clock() >= self._retry_at:
                self._state = HALF_OPEN
                self._probing = False
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """The protected call succeeded: close and fully reset the circuit."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._trips = 0
            self._probing = False

    def record_failure(self) -> None:
        """The protected call failed: count it, tripping when the threshold
        is reached (a failed half-open probe re-opens immediately)."""
        with self._lock:
            self._consecutive_failures += 1
            should_open = (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            if should_open:
                self._trips += 1
                self.opens += 1
                self._state = OPEN
                self._probing = False
                self._retry_at = self._clock() + self._backoff.delay(
                    f"breaker:{self.key}", self._trips
                )
