"""``repro.serving`` — the resilient policy-serving subsystem.

The online half of the paper's §3.3 "policy computed in advance": a
:class:`~repro.serving.server.PolicyServer` answers
``decide(config_fingerprint, decision_signature)`` lookups over loopback
HTTP through a tiered degradation ladder —

1. versioned, content-addressed policy-table registry
   (:class:`~repro.serving.registry.PolicyTableRegistry`, hot-reloadable,
   corrupt artifacts quarantined and never served);
2. live :class:`~repro.core.planner.ExpectedUtilityPlanner` fallback
   behind a per-config :class:`~repro.serving.breaker.CircuitBreaker`;
3. a documented safe-default action
   (:func:`~repro.serving.fallback.safe_default_decision`)

— with admission control (bounded in-flight requests, explicit
``overloaded`` shed responses that still carry a valid decision), health
probes, per-tier counters, and a seeded chaos mode
(:class:`~repro.serving.chaos.ServingFaultInjector`) reusing the runner's
:class:`~repro.runner.faults.FaultPlan` vocabulary.

::

    python -m repro.serving publish --registry ./registry --preset small
    python -m repro.serving serve --registry ./registry --preset small

See the README's "Serving" section for the degradation ladder, counter
semantics, and exit codes.
"""

from repro.serving.breaker import CircuitBreaker
from repro.serving.chaos import SERVING_FAULT_KINDS, RequestFaults, ServingFaultInjector
from repro.serving.fallback import (
    DecisionService,
    ServedDecision,
    ServingCounters,
    belief_from_signature,
    safe_default_decision,
)
from repro.serving.health import healthz_payload, readyz_payload
from repro.serving.registry import PolicyTableRegistry, content_digest
from repro.serving.server import PolicyClient, PolicyServer

__all__ = [
    "SERVING_FAULT_KINDS",
    "CircuitBreaker",
    "DecisionService",
    "PolicyClient",
    "PolicyServer",
    "PolicyTableRegistry",
    "RequestFaults",
    "ServedDecision",
    "ServingCounters",
    "ServingFaultInjector",
    "belief_from_signature",
    "content_digest",
    "healthz_payload",
    "readyz_payload",
    "safe_default_decision",
]
