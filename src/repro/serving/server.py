"""The asyncio policy server and its in-process client.

A deliberately minimal HTTP/1.1 JSON transport over
:func:`asyncio.start_server` — stdlib only, loopback-oriented, keep-alive
capable — in front of a :class:`~repro.serving.fallback.DecisionService`.
Routes:

* ``POST /decide`` — body ``{"fingerprint": ..., "signature": [...],
  "now": ...}``; answers with the served decision, its tier, and a counter
  snapshot.  Admission control is enforced *here*: when the number of
  in-flight decisions reaches ``max_pending`` the request is shed — still
  HTTP 200, still a valid (safe-default) decision, but
  ``"status": "overloaded"`` so a well-behaved client backs off.
* ``POST /reload`` — drop the registry's memory cache; in-flight requests
  keep the table object they already hold.
* ``GET /healthz`` / ``GET /readyz`` — liveness / readiness (503 when not
  ready to take traffic); ``GET /metrics`` — counter snapshot.

Decisions run in the service's thread pool via ``run_in_executor``, so a
slow live-planning fallback never blocks the event loop — health probes
stay responsive while tier 2 grinds.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.api.policy import signature_from_json
from repro.errors import OverloadedError, ServingError
from repro.serving.fallback import DecisionService
from repro.serving.health import healthz_payload, readyz_payload

__all__ = ["PolicyClient", "PolicyServer"]

#: Largest request body the server will read (a decision signature is tiny;
#: anything bigger is a confused or hostile client).
MAX_BODY_BYTES = 1_000_000

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 503: "Service Unavailable"}


def _render_response(status: int, payload: dict, *, keep_alive: bool) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


class PolicyServer:
    """Serve one :class:`DecisionService` over loopback HTTP.

    Parameters
    ----------
    service:
        The fallback chain answering ``/decide``.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start` — the test and CLI pattern).
    max_pending:
        Admission-control bound on concurrent in-flight decisions; the
        ``max_pending``-plus-first request is shed.
    """

    def __init__(
        self,
        service: DecisionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 32,
    ) -> None:
        if max_pending < 1:
            raise ServingError(f"max_pending must be at least 1, got {max_pending!r}")
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self._pending = 0
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def pending(self) -> int:
        """In-flight ``/decide`` requests right now."""
        return self._pending

    # ------------------------------------------------------------ connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, payload = await self._dispatch(method, path, body)
                writer.write(_render_response(status, payload, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError lands here when stop() tears down an idle
                # keep-alive connection; the transport is already closed,
                # so completing quietly beats asyncio's noisy callback log.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[tuple[str, str, bytes, bool]]:
        """One HTTP/1.1 request: ``(method, path, body, keep_alive)``."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return method, path, body, keep_alive

    # --------------------------------------------------------------- routing

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        if method == "GET" and path == "/healthz":
            return 200, healthz_payload(self.service.uptime_s)
        if method == "GET" and path == "/readyz":
            ready, payload = readyz_payload(
                tables=len(self.service.registry.fingerprints()),
                configs=len(self.service.configs),
                pending=self._pending,
                max_pending=self.max_pending,
                breaker_states=self.service.breaker_states(),
            )
            return (200 if ready else 503), payload
        if method == "GET" and path == "/metrics":
            return 200, {"counters": self.service.counters_snapshot()}
        if method == "POST" and path == "/reload":
            return 200, {"status": "ok", "dropped": self.service.registry.reload()}
        if method == "POST" and path == "/decide":
            return await self._decide(body)
        return 404, {"status": "error", "error": f"no route {method} {path}"}

    async def _decide(self, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body.decode("utf-8"))
            fingerprint = str(request["fingerprint"])
            signature = signature_from_json(request["signature"])
            now = float(request.get("now", 0.0))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
            return 400, {"status": "error", "error": f"malformed /decide request: {error}"}

        if self._pending >= self.max_pending:
            served = self.service.shed(fingerprint)
            return 200, served.to_payload(self.service.counters_snapshot())

        self._pending += 1
        try:
            loop = asyncio.get_running_loop()
            served = await loop.run_in_executor(
                None, self.service.decide, fingerprint, signature, now
            )
        finally:
            self._pending -= 1
        return 200, served.to_payload(self.service.counters_snapshot())


class PolicyClient:
    """Keep-alive asyncio client for a :class:`PolicyServer`.

    Not thread-safe and not for concurrent use from one instance — open
    one client per logical caller (they multiplex fine at the server).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        raise_on_overload: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.raise_on_overload = raise_on_overload
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = (json.dumps(payload) if payload is not None else "").encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ServingError("policy server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        return status, json.loads(data.decode("utf-8")) if data else {}

    # ------------------------------------------------------------------ verbs

    async def decide(
        self, fingerprint: str, signature, now: float = 0.0
    ) -> dict:
        """One decision lookup; returns the response payload.

        ``signature`` may be the tuple form or its JSON (list) form.  With
        ``raise_on_overload`` a shed response raises
        :class:`~repro.errors.OverloadedError` instead of returning — for
        callers that would rather retry elsewhere than accept the safe
        default.
        """
        status, payload = await self._request(
            "POST",
            "/decide",
            {"fingerprint": fingerprint, "signature": signature, "now": now},
        )
        if status != 200:
            raise ServingError(f"/decide failed ({status}): {payload.get('error')}")
        if payload.get("status") == "overloaded" and self.raise_on_overload:
            raise OverloadedError(f"policy server shed the request for {fingerprint}")
        return payload

    async def get(self, path: str) -> tuple[int, dict]:
        """A raw GET (health probes, metrics)."""
        return await self._request("GET", path)

    async def reload(self) -> dict:
        status, payload = await self._request("POST", "/reload")
        if status != 200:
            raise ServingError(f"/reload failed ({status})")
        return payload
