"""A pool of ISender components sharing one (sender × action × hypothesis) kernel.

:func:`repro.api.sender.build_components` builds one sender's inference
stack; a many-flow scenario calling it N times gets N independent planners
whose decide passes each launch their own (action × hypothesis) rollout.
:class:`BatchedSenderPool` generalizes the lane axis: it builds the same
per-sender parts (bit-identical construction — the pool literally calls
``build_components`` once per prior, in order), and its
:meth:`~BatchedSenderPool.decide_all` advances *every* sender's action
frontier through a single
:func:`~repro.inference.vectorized.rollout.batched_rollout_blocks` pass over
shared (sender × action × hypothesis) lane buffers.

Equivalence contract
--------------------

``decide_all(now)`` returns exactly the decisions the per-sender loop
``[parts.planner.decide(parts.belief, now) for parts in pool]`` would under
the ``"fused"`` rollout backend — bit-identical expected utilities, same
chosen actions, same ``rollouts_performed`` accounting.  Three facts make
this hold:

* each sender's pre-rollout half runs the literal standalone code
  (:func:`~repro.inference.vectorized.fused._prepare_decide` is shared);
* the pooled frontier's per-block event streams are byte-identical to each
  block's standalone rollout (the frontier core is lane-elementwise; see
  ``batched_rollout_blocks``);
* each sender's decide tail runs the literal standalone code
  (:func:`~repro.inference.vectorized.rollout._finish_decide` is shared).

Event-driven scenarios (``many_flow_contention``) wake senders on their own
ACK clocks, at distinct instants — there the pool's value is pooled
construction plus the fused per-sender decide; ``decide_all`` is the
batch-synchronous entry point for drivers that advance many senders in
lockstep (the aggregate benchmark, batched sweeps, RL-style steppers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.api.config import SenderConfig
from repro.api.sender import SenderParts, build_components
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.planner import Decision
    from repro.core.utility import UtilityFunction
    from repro.inference.prior import Prior

#: Belief backends whose ensembles expose ``top_rows`` — the row-indexed
#: view ``decide_all`` needs to alias each sender's hypotheses as a lane
#: block without a repack.
_ROW_ENSEMBLE_BACKENDS = frozenset({"vectorized", "fused"})


class BatchedSenderPool:
    """Per-sender inference parts plus a pooled batch-synchronous decide.

    Parameters
    ----------
    config:
        The :class:`~repro.api.config.SenderConfig` every pooled sender
        shares.  Its ``belief_backend`` must be a row-ensemble engine
        (``"vectorized"`` or ``"fused"``): the pooled decide aliases each
        belief's ensemble rows directly, which a scalar belief cannot
        offer.
    priors:
        One prior per sender, in sender order.  Construction is performed
        by calling :func:`~repro.api.sender.build_components` once per
        prior — byte-identical to building N independent senders.
    utility:
        Optional utility override forwarded to every sender's planner.
    start_time:
        Forwarded to every belief's initial observation time.
    """

    def __init__(
        self,
        config: SenderConfig,
        priors: Sequence["Prior"],
        *,
        utility: Optional["UtilityFunction"] = None,
        start_time: float = 0.0,
    ) -> None:
        if config.belief_backend not in _ROW_ENSEMBLE_BACKENDS:
            raise ConfigurationError(
                "BatchedSenderPool needs a row-ensemble belief backend "
                f"({', '.join(sorted(_ROW_ENSEMBLE_BACKENDS))}); "
                f"got {config.belief_backend!r}"
            )
        if not priors:
            raise ConfigurationError("BatchedSenderPool needs at least one prior")
        self.config = config
        self.parts: list[SenderParts] = [
            build_components(
                config, prior, utility=utility, start_time=start_time
            )
            for prior in priors
        ]

    # ---------------------------------------------------------------- access

    @property
    def size(self) -> int:
        return len(self.parts)

    def __len__(self) -> int:
        return len(self.parts)

    def __iter__(self) -> Iterator[SenderParts]:
        return iter(self.parts)

    def __getitem__(self, index: int) -> SenderParts:
        return self.parts[index]

    # ------------------------------------------------------------ pooled decide

    def decide_all(self, now: float) -> list["Decision"]:
        """Decide for every sender through one pooled rollout frontier.

        Each sender contributes one :class:`RolloutBlock` — its top-k rows
        fanned out over its own action grid — and a single
        ``batched_rollout_blocks`` call advances all (sender × action ×
        hypothesis) lanes together.  Decisions come back in sender order
        and are bit-identical to per-sender ``"fused"`` decides at the
        same ``now`` (see the module docstring for why).
        """
        # Imported here, not at module top: these live in the NumPy engine,
        # and the pool class itself must stay importable without it (the
        # registry's lazy-import discipline).
        from repro.inference.vectorized.fused import _prepare_decide
        from repro.inference.vectorized.rollout import (
            RolloutBlock,
            _finish_decide,
            batched_rollout_blocks,
        )

        prepared = [
            _prepare_decide(parts.planner, parts.belief, now)
            for parts in self.parts
        ]
        blocks = [
            RolloutBlock(
                state=state,
                rows=rows,
                action_delays=[action.delay for action in actions],
                horizon=horizon,
                packet_bits=parts.planner.packet_bits,
            )
            for parts, (state, rows, summary, actions, horizon, probe) in zip(
                self.parts, prepared
            )
        ]
        outcomes = batched_rollout_blocks(blocks, now)
        return [
            _finish_decide(parts.planner, summary, actions, horizon, outcome, probe)
            for parts, (state, rows, summary, actions, horizon, probe), outcome in zip(
                self.parts, prepared, outcomes
            )
        ]
