"""``build_sender`` — the one construction path for model-based senders.

Every experiment, runner scenario, example, and benchmark that wires an
:class:`~repro.core.isender.ISender` into a network now goes through this
factory with a :class:`~repro.api.config.SenderConfig`.  The older entry
points (``SenderSettings``, ``AblationConfig``, ``attach_isender``) survive
as deprecated adapters that construct a ``SenderConfig`` and land here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._persist import default_cache_dir
from repro.api.config import SenderConfig
from repro.api.policy import PolicyTable, load_or_precompute_policy_table
from repro.core.isender import ISender
from repro.core.planner import ExpectedUtilityPlanner
from repro.core.policy import PolicyCache
from repro.core.utility import UtilityFunction
from repro.errors import ConfigurationError
from repro.inference.belief import BeliefState
from repro.inference.prior import Prior


@dataclass
class SenderParts:
    """The components :func:`build_components` assembles, pre-wiring."""

    belief: BeliefState
    planner: ExpectedUtilityPlanner
    #: The decision policy installed on the sender (cache/table), or ``None``.
    policy: Optional[object]


def build_components(
    config: SenderConfig,
    prior: Optional[Prior] = None,
    *,
    utility: Optional[UtilityFunction] = None,
    policy_table: Optional[PolicyTable] = None,
    start_time: float = 0.0,
) -> SenderParts:
    """Construct the belief / planner / policy a config describes.

    For callers that do their own element wiring; most code wants
    :func:`build_sender`.  ``utility`` overrides the config's α-weighted
    utility (the §4 drain scenario passes its latency-penalizing variant).
    ``policy_table`` supplies a precomputed table for ``policy="table"``;
    omitted, one is precomputed on the spot from the config's prior.
    """
    belief = config.build_belief(prior, start_time=start_time)
    planner = config.build_planner(utility=utility)
    policy = None
    if config.policy == "cache":
        policy = PolicyCache(
            planner, queue_resolution_bits=config.policy_resolution_bits
        )
    elif config.policy == "table":
        if utility is not None:
            # A table's decisions maximize the *config's* utility; serving
            # them next to an overridden fallback utility would mix two
            # objectives silently.  Encode the utility in the config
            # (alpha / discount_timescale / latency_penalty) instead.
            raise ConfigurationError(
                "policy='table' cannot be combined with a utility= override: "
                "precomputed decisions maximize the config's own utility; "
                "express the utility through SenderConfig fields, or use "
                "policy='cache' / 'none'"
            )
        if policy_table is None:
            # Share precomputed tables across runs and runner workers when a
            # cache directory is configured (CLI --cache-dir exports
            # $REPRO_CACHE_DIR); without one this is a plain precompute.
            policy_table = load_or_precompute_policy_table(
                config, prior, cache_dir=default_cache_dir()
            )
        elif policy_table.fingerprint:
            # A stamped table refuses to serve a config it was not computed
            # for — stale entries would silently prescribe actions for the
            # wrong utility/prior.  (Unstamped, hand-built tables skip the
            # check.)
            expected = config.with_prior(prior).fingerprint()
            if policy_table.fingerprint != expected:
                raise ConfigurationError(
                    f"policy table was precomputed for config fingerprint "
                    f"{policy_table.fingerprint!r}, but this sender's config "
                    f"fingerprints as {expected!r}; recompute the table with "
                    "precompute_policy_table(config)"
                )
        policy = policy_table.with_planner(planner)
    return SenderParts(belief=belief, planner=planner, policy=policy)


def build_sender(
    config: SenderConfig,
    network,
    *,
    prior: Optional[Prior] = None,
    utility: Optional[UtilityFunction] = None,
    stop_time: Optional[float] = None,
    start_time: float = 0.0,
    policy_table: Optional[PolicyTable] = None,
    flow: Optional[str] = None,
    name: Optional[str] = None,
) -> ISender:
    """Build the sender ``config`` describes and wire it into ``network``.

    ``network`` is any preset-network handle exposing ``network`` (the
    :class:`~repro.sim.element.Network`), ``entry`` (the element the sender
    feeds), ``sender_receiver``, and ``sender_flow`` — i.e.
    :class:`~repro.topology.presets.Figure2Network` or
    :class:`~repro.topology.presets.SingleLinkNetwork`.

    ``prior`` overrides the config's own prior (scenario code often derives
    the prior per run); all other overrides mirror the old
    ``attach_isender`` surface so migrated call sites stay one-liners.
    """
    for attribute in ("network", "entry", "sender_receiver", "sender_flow"):
        if not hasattr(network, attribute):
            raise ConfigurationError(
                f"build_sender needs a preset-network handle exposing "
                f"{attribute!r} (got {type(network).__name__})"
            )
    parts = build_components(
        config,
        prior,
        utility=utility,
        policy_table=policy_table,
        start_time=start_time,
    )
    sender = ISender(
        parts.belief,
        parts.planner,
        network.sender_receiver,
        flow=flow if flow is not None else network.sender_flow,
        packet_bits=config.packet_bits,
        name=name,
        start_time=start_time,
        stop_time=stop_time,
        policy=parts.policy,
    )
    sender.connect(network.entry)
    network.network.add(sender)
    return sender
