"""``repro.api`` — the unified sender-configuration layer.

One frozen :class:`~repro.api.config.SenderConfig` fully describes a
model-based sender (prior, utility, kernel, hypothesis caps, engine
selection, policy mode);
:func:`~repro.api.sender.build_sender` is the single construction path that
turns a config into a wired :class:`~repro.core.isender.ISender`;
:mod:`~repro.api.backends` is the string-keyed registry the inference and
planner engines self-register on; and
:class:`~repro.api.policy.PolicyTable` is the paper's §3.3 "policy computed
in advance", precomputed over a discretized belief-signature grid and
serializable keyed by the config's fingerprint.

::

    from repro.api import SenderConfig, build_sender
    from repro.inference import figure3_prior
    from repro.topology import figure2_network

    config = SenderConfig(
        prior=figure3_prior(), alpha=1.0,
        belief_backend="vectorized", rollout_backend="vectorized",
        policy="cache",
    )
    network = figure2_network(seed=1)
    sender = build_sender(config, network)
    network.network.run(until=120.0)

The heavyweight names are loaded lazily (PEP 562) so that engine modules
can import :mod:`repro.api.backends` without dragging the whole
construction layer — and its imports of :mod:`repro.core` — into their own
import cycle.
"""

from repro.api.backends import BELIEF_BACKENDS, ROLLOUT_BACKENDS, BackendRegistry
from repro.errors import UnknownBackendError

#: Lazily imported public names: attribute -> (module, attribute).
_LAZY_EXPORTS = {
    "SenderConfig": ("repro.api.config", "SenderConfig"),
    "KERNELS": ("repro.api.config", "KERNELS"),
    "POLICY_MODES": ("repro.api.config", "POLICY_MODES"),
    "canonical_digest": ("repro.api.config", "canonical_digest"),
    "build_sender": ("repro.api.sender", "build_sender"),
    "build_components": ("repro.api.sender", "build_components"),
    "SenderParts": ("repro.api.sender", "SenderParts"),
    "BatchedSenderPool": ("repro.api.pool", "BatchedSenderPool"),
    "PolicyTable": ("repro.api.policy", "PolicyTable"),
    "precompute_policy_table": ("repro.api.policy", "precompute_policy_table"),
    "load_or_precompute_policy_table": (
        "repro.api.policy",
        "load_or_precompute_policy_table",
    ),
    "decision_to_payload": ("repro.api.policy", "decision_to_payload"),
    "decision_from_payload": ("repro.api.policy", "decision_from_payload"),
    "signature_from_json": ("repro.api.policy", "signature_from_json"),
    "table_quarantine_count": ("repro.api.policy", "table_quarantine_count"),
}

__all__ = [
    "BELIEF_BACKENDS",
    "ROLLOUT_BACKENDS",
    "BackendRegistry",
    "BatchedSenderPool",
    "KERNELS",
    "POLICY_MODES",
    "PolicyTable",
    "SenderConfig",
    "SenderParts",
    "UnknownBackendError",
    "build_components",
    "build_sender",
    "canonical_digest",
    "decision_from_payload",
    "decision_to_payload",
    "load_or_precompute_policy_table",
    "precompute_policy_table",
    "signature_from_json",
    "table_quarantine_count",
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
