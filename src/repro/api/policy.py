"""§3.3 as a subsystem: precomputed policy tables.

The paper observes that "for a particular model and distribution of
possible states, there will be a policy that can be computed in advance
that prescribes the utility-maximizing behavior".  The repo previously
approximated this with :class:`~repro.core.policy.PolicyCache` — a runtime
memo that forgets everything between processes.  This module promotes the
observation to a first-class artifact:

* :class:`PolicyTable` maps discretized belief signatures (the same digest
  :meth:`~repro.inference.belief.BeliefState.decision_signature` the cache
  uses) to precomputed :class:`~repro.core.planner.Decision` objects.  It
  plugs into :class:`~repro.core.isender.ISender` through the same
  ``policy=`` slot as the cache; signatures outside the table fall back to
  live planning (and are learned, so the table keeps densifying).
* :func:`precompute_policy_table` computes the table **offline**: a pilot
  run of the config's own planning problem on the Figure-2 topology visits
  the signatures the inference transient produces, then a burst-grid sweep
  densifies the queue-occupancy axis of the signature grid around the
  converged belief.  The sweep's decisions are computed through the
  vectorized rollout lanes by default (PR 3's engine), which is what makes
  precomputation cheap enough to run per config.
* Tables serialize to canonical JSON keyed by
  :meth:`~repro.api.config.SenderConfig.fingerprint`, so a table computed
  once can ship with an experiment and refuses to load against a config it
  was not computed for.

The steady-state decide path through a populated table is a signature
computation plus one dict lookup — the ``BENCH_policy.json`` record gates
it at ≥5× faster than uncached planning.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Optional, Sequence

from repro._persist import atomic_write_text, quarantine_file

from repro.core.actions import Action
from repro.core.planner import Decision, ExpectedUtilityPlanner
from repro.core.policy import PolicyCache
from repro.errors import ConfigurationError
from repro.inference.belief import BeliefState
from repro.inference.prior import Prior

#: Serialization format version, bumped on incompatible layout changes.
TABLE_SCHEMA_VERSION = 1

#: Sequence-number base for synthetic sweep sends, clear of any real run.
_SWEEP_SEQ_BASE = 2_000_000


def decision_to_payload(decision: Decision) -> dict:
    """The canonical JSON-serializable form of one planner decision.

    The same layout :meth:`PolicyTable.to_payload` stores per entry and the
    serving layer puts on the wire, so a served decision deserializes
    bit-identically to a table entry.
    """
    return {
        "delay": decision.action.delay,
        "horizon": decision.horizon,
        "hypotheses_evaluated": decision.hypotheses_evaluated,
        "expected_utilities": sorted(decision.expected_utilities.items()),
    }


def decision_from_payload(payload: dict) -> Decision:
    """Rebuild a :class:`~repro.core.planner.Decision` from payload form."""
    return Decision(
        action=Action(float(payload["delay"])),
        expected_utilities={
            float(delay): float(value)
            for delay, value in payload["expected_utilities"]
        },
        hypotheses_evaluated=int(payload["hypotheses_evaluated"]),
        horizon=float(payload["horizon"]),
    )


def signature_from_json(value) -> tuple:
    """A belief decision signature decoded from its JSON (nested-list) form.

    JSON has no tuples, so a signature travelling through a table file or a
    serving request arrives as nested lists; this restores the exact
    hashable tuple :meth:`~repro.inference.belief.BeliefState.decision_signature`
    produces, suitable for direct table lookup.
    """
    return _tuplify(value)


class PolicyTable(PolicyCache):
    """Precomputed utility-maximizing decisions over belief signatures.

    A :class:`~repro.core.policy.PolicyCache` whose decide/learn/evict
    mechanics are inherited, specialized for the offline §3.3 workflow:
    the signature ``top_k`` is frozen at precompute time (a deserialized
    table keys exactly as it was computed, whatever planner is attached
    later), the fallback planner is optional until attached, learning can
    be frozen, and the entries serialize to JSON keyed by the owning
    config's fingerprint.

    Parameters
    ----------
    planner:
        The planner consulted when a signature is missing from the table
        (and used for ``top_k`` unless the table was deserialized with its
        own).  ``None`` is allowed for a bare deserialized table; attach a
        planner with :meth:`with_planner` before deciding.
    queue_resolution_bits:
        Queue-occupancy resolution of the belief signature (same meaning as
        :class:`~repro.core.policy.PolicyCache`).
    fingerprint:
        The owning :meth:`~repro.api.config.SenderConfig.fingerprint`;
        stored in the JSON artifact and checked on load.
    learn:
        Whether live-planned fallback decisions are added to the table.
    max_entries:
        Hard cap on the table size (oldest entries evicted first).
    """

    #: Whether this instance was read back from a cache directory rather
    #: than computed.  ``False`` by default on every construction path;
    #: :func:`load_or_precompute_policy_table` sets it on cache hits.
    loaded_from_cache = False

    def __init__(
        self,
        planner: Optional[ExpectedUtilityPlanner] = None,
        queue_resolution_bits: float = 3_000.0,
        *,
        top_k: Optional[int] = None,
        fingerprint: str = "",
        learn: bool = True,
        max_entries: int = 65_536,
    ) -> None:
        if queue_resolution_bits <= 0:
            raise ConfigurationError("queue_resolution_bits must be positive")
        if max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        if top_k is None:
            if planner is None:
                raise ConfigurationError(
                    "a PolicyTable needs either a planner or an explicit top_k"
                )
            top_k = planner.top_k
        super().__init__(
            planner,
            queue_resolution_bits=queue_resolution_bits,
            max_entries=max_entries,
        )
        self.top_k = top_k
        self.fingerprint = fingerprint
        self.learn = learn

    # ------------------------------------------------------------------ decide

    def _belief_key(self, belief: BeliefState) -> tuple:
        # Unlike the runtime cache, the signature width is frozen at the
        # table's own top_k, not the attached planner's.
        return belief.decision_signature(self.top_k, self.queue_resolution_bits)

    def _plan(self, belief: BeliefState, now: float) -> Decision:
        if self.planner is None:
            raise ConfigurationError(
                "this PolicyTable has no fallback planner attached; call "
                "with_planner(...) before deciding on signatures outside "
                "the table"
            )
        return self.planner.decide(belief, now)

    def seed(self, belief: BeliefState, now: float) -> Decision:
        """Precompute and store the decision for ``belief`` (sweep helper).

        Unlike :meth:`decide` this does not touch the hit/miss counters —
        it is the offline path :func:`precompute_policy_table` drives.
        """
        key = self._belief_key(belief)
        decision = self._cache.get(key)
        if decision is None:
            if self.planner is None:
                raise ConfigurationError("cannot seed a PolicyTable without a planner")
            decision = self.planner.decide(belief, now)
            self._store(key, decision)
        return decision

    # --------------------------------------------------------------- plumbing

    def with_planner(self, planner: ExpectedUtilityPlanner) -> "PolicyTable":
        """Attach the runtime fallback planner; returns the table itself."""
        self.planner = planner
        return self

    def contains(self, belief: BeliefState) -> bool:
        """Whether the belief's current signature has a precomputed decision."""
        return self._belief_key(belief) in self._cache

    def decision_for(self, signature: tuple) -> Optional[Decision]:
        """The precomputed decision stored under ``signature``, or ``None``.

        The serving layer's tier-1 lookup: unlike :meth:`decide` this takes
        the signature itself (a client computes it remotely and ships it
        over the wire), consults no fallback planner, and touches no
        hit/miss counters — the server keeps its own per-tier counters.
        """
        return self._cache.get(signature)

    def signatures(self) -> list[tuple]:
        """Every signature with a precomputed decision (serving workloads)."""
        return list(self._cache)

    # ------------------------------------------------------------ serialization

    def to_payload(self) -> dict:
        """The canonical JSON-serializable form of this table."""
        entries = []
        for key, decision in self._cache.items():
            entry = decision_to_payload(decision)
            entry["key"] = key
            entries.append(entry)
        return {
            "schema": TABLE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "queue_resolution_bits": self.queue_resolution_bits,
            "top_k": self.top_k,
            "max_entries": self.max_entries,
            "entries": entries,
        }

    def to_json(self, path: str | Path) -> Path:
        """Write the table to ``path`` as canonical JSON (atomically)."""
        return atomic_write_text(
            Path(path),
            json.dumps(self.to_payload(), sort_keys=True, indent=1) + "\n",
        )

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        planner: Optional[ExpectedUtilityPlanner] = None,
        expected_fingerprint: Optional[str] = None,
        learn: bool = True,
    ) -> "PolicyTable":
        """Rebuild a table from :meth:`to_payload` output."""
        if payload.get("schema") != TABLE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported policy-table schema {payload.get('schema')!r} "
                f"(this build reads version {TABLE_SCHEMA_VERSION})"
            )
        fingerprint = payload.get("fingerprint", "")
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise ConfigurationError(
                f"policy table was precomputed for config fingerprint "
                f"{fingerprint!r}, not {expected_fingerprint!r}; recompute it "
                "with precompute_policy_table(config)"
            )
        table = cls(
            planner,
            queue_resolution_bits=float(payload["queue_resolution_bits"]),
            top_k=int(payload["top_k"]),
            fingerprint=fingerprint,
            learn=learn,
            # Older artifacts (schema 1 before the cap was persisted) omit
            # the key; they were all written with the construction default.
            max_entries=int(payload.get("max_entries", 65_536)),
        )
        for entry in payload["entries"]:
            table._cache[_tuplify(entry["key"])] = decision_from_payload(entry)
        return table

    @classmethod
    def from_json(
        cls,
        path: str | Path,
        planner: Optional[ExpectedUtilityPlanner] = None,
        expected_fingerprint: Optional[str] = None,
        learn: bool = True,
    ) -> "PolicyTable":
        """Load a table written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_payload(
            payload,
            planner=planner,
            expected_fingerprint=expected_fingerprint,
            learn=learn,
        )


def _tuplify(value):
    """Recursively convert JSON lists back into the signature's tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def precompute_policy_table(
    config,
    prior: Optional[Prior] = None,
    *,
    queue_resolution_bits: Optional[float] = None,
    pilot_duration: float = 30.0,
    seed: int = 1,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    cross_fraction: float = 0.7,
    loss_rate: float = 0.2,
    buffer_capacity_bits: float = 96_000.0,
    burst_levels: Sequence[int] = (0, 1, 2, 3, 4, 6, 8, 11, 14),
    sweep_backend: str = "vectorized",
) -> PolicyTable:
    """Compute a :class:`PolicyTable` for ``config`` ahead of time (§3.3).

    Two coverage passes populate the table:

    1. **Pilot run** — the config's sender runs on a shortened Figure-2
       scenario (the distribution of states the paper's "particular model"
       language refers to), learning a decision for every belief signature
       the inference transient and steady state visit.
    2. **Burst-grid sweep** — from the pilot's converged belief, a grid of
       queued send bursts sweeps the queue-occupancy axis of the signature
       space; each grid point's decision is computed through the
       ``sweep_backend`` rollout engine (vectorized lanes by default, the
       engine PR 3 built for exactly this fan-out).

    The returned table keeps ``learn=True`` so runtime misses continue to
    densify it, and carries ``config.fingerprint()`` for serialization.
    """
    from repro.topology.presets import figure2_network

    prior = prior if prior is not None else config.prior
    if prior is None:
        raise ConfigurationError(
            "precompute_policy_table needs a prior: pass one explicitly or "
            "construct the SenderConfig with prior=..."
        )
    if queue_resolution_bits is None:
        queue_resolution_bits = config.policy_resolution_bits

    # The stored fingerprint must cover the prior actually swept, including
    # one passed explicitly over a prior-less config — otherwise two tables
    # computed for different priors would share an identity.
    config = config.with_prior(prior)
    planner = config.build_planner(rollout_backend=sweep_backend)
    table = PolicyTable(
        planner,
        queue_resolution_bits=queue_resolution_bits,
        fingerprint=config.fingerprint(),
        learn=True,
    )

    # Pass 1: pilot run on the Figure-2 scenario, decisions recorded by the
    # learning table itself.
    from repro.core.isender import ISender

    network = figure2_network(
        link_rate_bps=link_rate_bps,
        cross_fraction=cross_fraction,
        loss_rate=loss_rate,
        buffer_capacity_bits=buffer_capacity_bits,
        switch_interval=switch_interval,
        packet_bits=config.packet_bits,
        seed=seed,
    )
    belief = config.build_belief()
    sender = ISender(
        belief,
        planner,
        network.sender_receiver,
        flow=network.sender_flow,
        packet_bits=config.packet_bits,
        policy=table,
    )
    sender.connect(network.entry)
    network.network.add(sender)
    network.network.run(until=pilot_duration)

    # Pass 2: burst-grid sweep over queue occupancy around the converged
    # belief.  Each level forks the pilot's final belief, queues that many
    # sends, and seeds the resulting signature's decision.
    for level in burst_levels:
        forked = copy.deepcopy(belief)
        for index in range(level):
            forked.record_send(
                _SWEEP_SEQ_BASE + index, config.packet_bits, pilot_duration
            )
        forked.update(pilot_duration)
        table.seed(forked, pilot_duration)

    return table


# --------------------------------------------------------- cross-run reuse

#: Corrupt or mismatched cached table files moved to quarantine by this
#: process (see :func:`table_quarantine_count`).
_table_quarantines = 0


def table_quarantine_count() -> int:
    """How many cached policy-table files this process has quarantined.

    Incremented by :func:`load_or_precompute_policy_table` whenever a
    cached table fails to load (truncated JSON, stale schema, fingerprint
    mismatch) and is moved to the cache's ``quarantine/`` directory — the
    same never-silently-delete convention
    :class:`~repro.runner.cache.ResultCache` follows.
    """
    return _table_quarantines


def _effective_sweep_params(sweep_params: dict) -> dict:
    """``sweep_params`` with :func:`precompute_policy_table` defaults resolved.

    Keys the cache on what the precompute will actually run with — the
    shared :func:`repro._persist.signature_defaults` rule the runner's
    result cache also applies, so the two invalidation behaviours cannot
    drift.  ``prior`` is identity, not a sweep parameter; the config
    fingerprint already covers it.
    """
    from repro._persist import signature_defaults

    effective = signature_defaults(precompute_policy_table, exclude=("prior",))
    effective.update(sweep_params)
    return effective


def policy_table_cache_path(cache_dir: str | Path, config, sweep_params: dict) -> Path:
    """Where a precomputed table for ``config`` lives under ``cache_dir``.

    The filename carries the config fingerprint (so a directory listing is
    self-describing) plus a digest of the *effective* precompute sweep
    parameters — the same config precomputed over a different pilot
    scenario is a different artifact.
    """
    from repro._version import __version__
    from repro.api.config import canonical_digest

    sweep_digest = canonical_digest(
        {
            "schema": TABLE_SCHEMA_VERSION,
            "version": __version__,
            "sweep": _effective_sweep_params(sweep_params),
        }
    )
    return Path(cache_dir) / "policy" / f"{config.fingerprint()}-{sweep_digest}.json"


def load_or_precompute_policy_table(
    config,
    prior: Optional[Prior] = None,
    *,
    cache_dir: Optional[str | Path] = None,
    **precompute_kwargs,
) -> PolicyTable:
    """A :class:`PolicyTable` for ``config``, reused across runs and workers.

    With ``cache_dir=None`` this is exactly :func:`precompute_policy_table`.
    Otherwise the table is keyed by ``config.fingerprint()`` (prior
    included) plus a digest of the precompute parameters and persisted under
    ``cache_dir/policy/``: the first caller — in any process — computes and
    writes it, every later caller loads it.  Writes go through a
    process-unique temporary file and an atomic :func:`os.replace`, so
    parallel sweep workers racing on the same directory each end up with a
    complete table (last writer wins; the content is deterministic, so the
    winners are bit-identical).  A corrupted or fingerprint-mismatched file
    is moved to ``cache_dir/quarantine/`` (the
    :class:`~repro.runner.cache.ResultCache` convention — never left in
    place to be re-read, never silently deleted), counted on
    :func:`table_quarantine_count`, and recomputed.

    The returned table carries ``loaded_from_cache`` (``True`` when it was
    read back rather than computed), which the cache-semantics tests and
    the runner-scaling bench observe.
    """
    effective = config.with_prior(prior if prior is not None else config.prior)
    if cache_dir is None:
        return precompute_policy_table(config, prior, **precompute_kwargs)

    path = policy_table_cache_path(cache_dir, effective, dict(precompute_kwargs))
    if path.exists():
        try:
            table = PolicyTable.from_json(
                path, expected_fingerprint=effective.fingerprint()
            )
            table.loaded_from_cache = True
            return table
        except (ConfigurationError, OSError, ValueError, KeyError, TypeError):
            # Unreadable, truncated, or stale-schema file: quarantine the
            # evidence and fall through to recompute — the cache must never
            # poison a run, and a bad file must never linger to be re-read
            # (and re-fail) by every later caller.
            global _table_quarantines
            _table_quarantines += 1
            quarantine_file(Path(cache_dir), path)

    table = precompute_policy_table(config, prior, **precompute_kwargs)
    table.to_json(path)
    return table
