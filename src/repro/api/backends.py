"""The string-keyed engine registry behind every ``backend=`` knob.

Before this module existed, selecting an inference or planner engine was a
scatter of string comparisons: ``BeliefState.from_prior`` special-cased
``backend == "vectorized"``, ``ExpectedUtilityPlanner.decide`` branched on
``rollout_backend``, and an unknown name failed only deep inside whichever
constructor happened to hit it first.  This module centralizes the mapping:

* :data:`BELIEF_BACKENDS` — names → :class:`~repro.inference.belief.BeliefState`
  subclasses (the ensemble storage/execution engines);
* :data:`ROLLOUT_BACKENDS` — names → planner decide engines, each a callable
  ``engine(planner, belief, now) -> Decision`` implementing the (action ×
  hypothesis) fan-out.

Engines *self-register*: ``repro.inference.belief`` registers ``"scalar"``
at import, ``repro.inference.vectorized.belief`` registers ``"vectorized"``,
and likewise for the rollout engines in ``repro.core.planner`` and
``repro.inference.vectorized.rollout``.  The registry holds only lazy
*import triggers* for the built-in names, so resolving ``"vectorized"``
imports the NumPy engine on first use without this module depending on it.

Unknown names raise :class:`~repro.errors.UnknownBackendError` — eagerly at
:class:`~repro.api.config.SenderConfig` construction time via
:meth:`BackendRegistry.validate`, and again (with the same message) if a
stale name somehow reaches :meth:`BackendRegistry.resolve`.

This module deliberately imports nothing beyond :mod:`repro.errors`, so any
engine module can import it without cycles.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Mapping, Optional

from repro.errors import ConfigurationError, UnknownBackendError


class BackendRegistry:
    """A string-keyed map of engine names to engine objects.

    Parameters
    ----------
    kind:
        Human-readable registry label used in error messages
        (``"belief"``, ``"rollout"``).
    builtin_modules:
        ``name -> module path`` import triggers: resolving a name that has
        not self-registered yet imports the module (whose import is expected
        to perform the registration).  This keeps built-in engines lazy —
        the registry never imports an engine the process does not use —
        while :meth:`validate` can still vet names without importing.
    """

    def __init__(
        self, kind: str, builtin_modules: Optional[Mapping[str, str]] = None
    ) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._builtin_modules = dict(builtin_modules or {})

    # ------------------------------------------------------------ registration

    def register(self, name: str, target: Any = None):
        """Register ``target`` under ``name`` (usable as a decorator).

        Re-registering the same object is a no-op (modules may be imported
        through several trigger paths); registering a *different* object
        under a taken name is an error.
        """
        if target is None:

            def decorate(obj: Any) -> Any:
                self.register(name, obj)
                return obj

            return decorate
        existing = self._entries.get(name)
        if existing is not None and existing is not target:
            raise ConfigurationError(
                f"{self.kind} backend {name!r} is already registered "
                f"(to {existing!r})"
            )
        self._entries[name] = target
        return target

    # -------------------------------------------------------------- resolution

    def names(self) -> list[str]:
        """Every known backend name — registered or built-in — sorted."""
        return sorted(set(self._entries) | set(self._builtin_modules))

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._builtin_modules

    def validate(self, name: str) -> str:
        """Vet ``name`` without importing anything; return it unchanged.

        This is the config-time check: an unknown backend string fails here,
        at :class:`~repro.api.config.SenderConfig` construction, instead of
        deep inside belief or planner construction.
        """
        if name not in self:
            raise UnknownBackendError(
                f"unknown {self.kind} backend {name!r}; "
                f"registered backends: {', '.join(self.names()) or '<none>'}"
            )
        return name

    def resolve(self, name: str) -> Any:
        """Return the engine registered under ``name``, importing it if lazy."""
        if name not in self._entries:
            module = self._builtin_modules.get(name)
            if module is not None:
                try:
                    importlib.import_module(module)
                except ImportError as error:
                    # Keep the old entry points' contract: a backend whose
                    # dependencies are missing (e.g. NumPy for the
                    # vectorized engines) surfaces as a repro error, not a
                    # raw ImportError.
                    raise UnknownBackendError(
                        f"{self.kind} backend {name!r} could not be loaded "
                        f"({error}); is its dependency installed?"
                    ) from error
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownBackendError(
                f"unknown {self.kind} backend {name!r}; "
                f"registered backends: {', '.join(self.names()) or '<none>'}"
            ) from None


#: Belief-state engines: name → BeliefState subclass.  ``"scalar"`` is the
#: per-object reference implementation, ``"vectorized"`` the NumPy
#: struct-of-arrays ensemble, and ``"fused"`` the wake-up-fused variant
#: whose compaction runs as one ``np.unique`` grouping over the signature
#: matrix (bit-identical posteriors to ``"vectorized"``).
BELIEF_BACKENDS = BackendRegistry(
    "belief",
    builtin_modules={
        "scalar": "repro.inference.belief",
        "vectorized": "repro.inference.vectorized.belief",
        "fused": "repro.inference.vectorized.fused",
    },
)

#: Planner rollout engines: name → ``engine(planner, belief, now) -> Decision``.
#: ``"scalar"`` event-steps one model clone per lane; ``"vectorized"``
#: advances all lanes through one masked event frontier; ``"fused"`` feeds
#: ensemble rows straight into that frontier (no ``RolloutLanes`` repack)
#: and powers the (sender × action × hypothesis) ``BatchedSenderPool``.
ROLLOUT_BACKENDS = BackendRegistry(
    "rollout",
    builtin_modules={
        "scalar": "repro.core.planner",
        "vectorized": "repro.inference.vectorized.rollout",
        "fused": "repro.inference.vectorized.fused",
    },
)
