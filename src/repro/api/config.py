"""The one frozen description of a model-based sender.

Before this layer existed, the knobs that shaped an ISender were smeared
over four entry points: ``SenderSettings`` (experiments),
``AblationConfig`` (the ablation sweep), ``BeliefState.from_prior``'s
``backend=`` keyword, and the runner scenarios' loose parameter lists.
:class:`SenderConfig` replaces all of them: a single frozen dataclass —
prior, utility shape, likelihood kernel, hypothesis caps, engine selection,
and policy mode — that fully describes a model-based sender.  Everything
that builds a sender now goes through
:func:`repro.api.sender.build_sender` with one of these.

Backend names are validated **eagerly**, at construction, against the
:mod:`repro.api.backends` registries, so a typo like
``rollout_backend="vectorised"`` fails with a
:class:`~repro.errors.UnknownBackendError` listing the registered engines
instead of surfacing deep inside planner construction.

:meth:`SenderConfig.fingerprint` is the stable identity used to key
precomputed :class:`~repro.api.policy.PolicyTable` files (§3.3): two
configs with the same fields and the same prior support produce the same
fingerprint on any machine or Python version.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Optional

from repro.api.backends import BELIEF_BACKENDS, ROLLOUT_BACKENDS
from repro.errors import ConfigurationError
from repro.inference.belief import BeliefState
from repro.inference.likelihood import ExactMatchKernel, GaussianKernel, LikelihoodKernel
from repro.inference.prior import Prior
from repro.units import DEFAULT_PACKET_BITS

#: Likelihood kernels a config can name.
KERNELS = ("gaussian", "exact")

#: Decision-policy modes (§3.3): live planning, memoized decisions, or a
#: precomputed policy table.
POLICY_MODES = ("none", "cache", "table")

#: Fingerprint format version, bumped on incompatible changes.
FINGERPRINT_VERSION = 1


def canonical_digest(payload, length: int = 16) -> str:
    """Hex digest of ``payload``'s canonical JSON form.

    The one hashing convention shared by every fingerprint-keyed artifact:
    :meth:`SenderConfig.fingerprint`, the runner's persistent
    :class:`~repro.runner.cache.ResultCache` keys, and the
    :class:`~repro.api.policy.PolicyTable` cache filenames.  ``payload``
    must be JSON-serializable (non-JSON leaves fall back to ``str``, the
    same rule the runner's canonical artifacts use)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


@dataclass(frozen=True)
class SenderConfig:
    """Everything needed to construct a model-based sender.

    Parameters
    ----------
    prior:
        The sender's prior over network configurations.  May be ``None``
        when the prior is supplied at build time (scenario code often
        derives it per run), in which case the fingerprint covers only the
        remaining fields.
    alpha / discount_timescale / latency_penalty:
        The :class:`~repro.core.utility.AlphaWeightedUtility` shape (§3.3);
        the defaults are the Figure-3 calibration.
    kernel / kernel_scale:
        Likelihood kernel: ``"gaussian"`` (scale = σ) or ``"exact"``
        (scale = rejection tolerance).
    max_hypotheses:
        Ensemble cap applied after every belief update.
    top_k:
        Highest-weight hypotheses the planner evaluates per decision.
    packet_bits:
        Uniform packet size of the sender.
    horizon / horizon_service_multiples:
        Planner rollout horizon (fixed seconds, or derived per decision).
    belief_backend / rollout_backend:
        Registered engine names (see :mod:`repro.api.backends`); validated
        eagerly at construction.  The built-ins are ``"scalar"`` (the
        reference oracle), ``"vectorized"`` (struct-of-arrays ensemble and
        batched rollout lanes), and ``"fused"`` (the single-pass wake-up
        kernel; also the engine :class:`~repro.api.pool.BatchedSenderPool`
        batches across senders).
    policy:
        ``"none"`` plans live at every wake-up; ``"cache"`` memoizes
        decisions (:class:`~repro.core.policy.PolicyCache`); ``"table"``
        consults a precomputed :class:`~repro.api.policy.PolicyTable`.
    policy_resolution_bits:
        Queue-occupancy resolution of the cache/table belief signature.
    """

    prior: Optional[Prior] = None
    alpha: float = 1.0
    discount_timescale: float = 20.0
    latency_penalty: float = 0.0
    kernel: str = "gaussian"
    kernel_scale: float = 0.4
    max_hypotheses: int = 200
    top_k: int = 16
    packet_bits: float = DEFAULT_PACKET_BITS
    horizon: Optional[float] = None
    horizon_service_multiples: float = 12.0
    belief_backend: str = "scalar"
    rollout_backend: str = "scalar"
    policy: str = "none"
    policy_resolution_bits: float = 3_000.0

    def __post_init__(self) -> None:
        BELIEF_BACKENDS.validate(self.belief_backend)
        ROLLOUT_BACKENDS.validate(self.rollout_backend)
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        if self.policy not in POLICY_MODES:
            raise ConfigurationError(
                f"unknown policy mode {self.policy!r}; expected one of {POLICY_MODES}"
            )
        if self.kernel_scale <= 0:
            raise ConfigurationError(
                f"kernel_scale must be positive, got {self.kernel_scale!r}"
            )
        if self.max_hypotheses < 1:
            raise ConfigurationError("max_hypotheses must be at least 1")
        if self.top_k < 1:
            raise ConfigurationError("top_k must be at least 1")
        if self.packet_bits <= 0:
            raise ConfigurationError(
                f"packet_bits must be positive, got {self.packet_bits!r}"
            )
        if self.policy_resolution_bits <= 0:
            raise ConfigurationError("policy_resolution_bits must be positive")

    # -------------------------------------------------------------- derivation

    def with_prior(self, prior: Optional[Prior]) -> "SenderConfig":
        """This config with ``prior`` substituted (no-op when ``None``)."""
        if prior is None or prior is self.prior:
            return self
        return replace(self, prior=prior)

    # ------------------------------------------------------------ construction

    def build_kernel(self) -> LikelihoodKernel:
        """The likelihood kernel this config names."""
        if self.kernel == "exact":
            return ExactMatchKernel(tolerance=self.kernel_scale)
        return GaussianKernel(sigma=self.kernel_scale)

    def build_utility(self):
        """The :class:`~repro.core.utility.AlphaWeightedUtility` this config names."""
        from repro.core.utility import AlphaWeightedUtility

        return AlphaWeightedUtility(
            alpha=self.alpha,
            discount_timescale=self.discount_timescale,
            latency_penalty=self.latency_penalty,
        )

    def build_belief(
        self, prior: Optional[Prior] = None, start_time: float = 0.0
    ) -> BeliefState:
        """A belief state over ``prior`` (defaulting to the config's own)."""
        prior = prior if prior is not None else self.prior
        if prior is None:
            raise ConfigurationError(
                "this SenderConfig carries no prior; pass one to build_belief "
                "/ build_sender or construct the config with prior=..."
            )
        return BeliefState.from_prior(
            prior,
            kernel=self.build_kernel(),
            max_hypotheses=self.max_hypotheses,
            start_time=start_time,
            backend=self.belief_backend,
        )

    def build_planner(self, utility=None, rollout_backend: Optional[str] = None):
        """The expected-utility planner this config describes.

        ``utility`` and ``rollout_backend`` overrides exist for callers
        like the policy-table precompute sweep, which runs the config's
        planning problem through the vectorized lane engine regardless of
        the configured runtime backend.
        """
        from repro.core.planner import ExpectedUtilityPlanner

        return ExpectedUtilityPlanner(
            utility if utility is not None else self.build_utility(),
            packet_bits=self.packet_bits,
            horizon=self.horizon,
            horizon_service_multiples=self.horizon_service_multiples,
            top_k=self.top_k,
            rollout_backend=(
                rollout_backend if rollout_backend is not None else self.rollout_backend
            ),
        )

    # ---------------------------------------------------------------- identity

    def describe(self) -> dict:
        """A canonical, JSON-serializable description of this config.

        The prior is described by its full discrete support — sorted
        parameter assignments with probabilities — so two priors built by
        different code paths fingerprint identically iff they put the same
        mass on the same configurations.
        """
        config_fields = {
            spec.name: getattr(self, spec.name)
            for spec in dataclass_fields(self)
            if spec.name != "prior"
        }
        description: dict = {"version": FINGERPRINT_VERSION, "config": config_fields}
        if self.prior is not None:
            # Sorted support: two priors fingerprint identically iff they
            # put the same mass on the same configurations, regardless of
            # the grids' enumeration order.
            description["prior"] = sorted(
                [sorted(assignment.items()), probability]
                for assignment, probability in self.prior.combinations()
            )
        else:
            description["prior"] = None
        return description

    def fingerprint(self) -> str:
        """A stable hex digest identifying this config (and its prior).

        Keys serialized :class:`~repro.api.policy.PolicyTable` files and
        the runner's persistent result cache: a table precomputed for one
        fingerprint refuses to load against a different config, and a
        cached grid point is replayed only for the exact configuration
        that produced it.
        """
        return canonical_digest(self.describe())
