"""What the sender knows: its own transmissions and the acknowledgements.

The RECEIVER "conveys the time of each packet received back to the ISENDER"
(§3.1); the preliminary experiments assume synchronized clocks and a
lossless, instant return path (§3.4), so an acknowledgement tells the sender
both the sequence number and the exact reception time of the packet.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SentRecord:
    """One packet transmitted by the sender."""

    seq: int
    size_bits: float
    sent_at: float


@dataclass(frozen=True, slots=True)
class AckObservation:
    """One acknowledgement received by the sender.

    Attributes
    ----------
    seq:
        Sequence number of the acknowledged packet.
    received_at:
        Time the packet arrived at the receiver (as reported by the
        receiver; equal to the delivery time under synchronized clocks).
    ack_at:
        Time the acknowledgement reached the sender (equal to
        ``received_at`` when the return path is instant).
    """

    seq: int
    received_at: float
    ack_at: float

    @property
    def report_delay(self) -> float:
        """Return-path latency of the acknowledgement."""
        return self.ack_at - self.received_at
