"""The sender's probability distribution over network configurations.

The :class:`BeliefState` holds a weighted ensemble of
:class:`~repro.inference.hypothesis.Hypothesis` objects and applies the
sequential Bayesian update the paper describes (§3.2): every time the sender
wakes up, each hypothesis is simulated forward to the present (forking on
latent nondeterminism), scored against what actually happened, re-weighted,
pruned, compacted, and renormalized.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.api.backends import BELIEF_BACKENDS
from repro.errors import DegenerateBeliefError, InferenceError
from repro.inference.hypothesis import Hypothesis
from repro.inference.likelihood import GaussianKernel, LikelihoodKernel
from repro.inference.observation import AckObservation
from repro.inference.prior import Prior


class BeliefState:
    """A weighted ensemble of candidate network configurations.

    Parameters
    ----------
    hypotheses:
        Initial hypotheses.
    weights:
        Initial weights (normalized internally).
    kernel:
        Likelihood kernel for timing errors; defaults to a Gaussian kernel
        with a 0.25 s standard deviation.
    max_hypotheses:
        Hard cap on the ensemble size after every update; lowest-weight
        hypotheses are discarded first.
    prune_fraction:
        Hypotheses whose weight falls below ``prune_fraction`` times the
        largest weight are discarded.
    missing_grace:
        Seconds of grace before an unacknowledged packet is charged to
        stochastic loss (passed through to hypothesis scoring).
    cross_tally_window:
        Seconds of cross-traffic delivery/drop history each hypothesis's
        model retains behind the update clock.  Planner rollouts read the
        tallies of *fresh* clones only, so history older than any scoring
        or rollout window is dead weight that previously grew (and was
        re-copied on every gate fork) without bound on long runs; ``None``
        restores the unbounded behaviour.
    on_degenerate:
        What to do when every hypothesis is rejected by an observation:
        ``"keep"`` ignores the observation and keeps the pre-update weights
        (robust default, counted in :attr:`degenerate_updates`), ``"raise"``
        raises :class:`~repro.errors.DegenerateBeliefError`.
    """

    def __init__(
        self,
        hypotheses: Sequence[Hypothesis],
        weights: Optional[Sequence[float]] = None,
        kernel: Optional[LikelihoodKernel] = None,
        max_hypotheses: int = 512,
        prune_fraction: float = 1e-6,
        missing_grace: float = 0.0,
        cross_tally_window: Optional[float] = 60.0,
        on_degenerate: str = "keep",
    ) -> None:
        if not hypotheses:
            raise InferenceError("a belief state needs at least one hypothesis")
        if on_degenerate not in ("keep", "raise"):
            raise InferenceError(f"unknown on_degenerate policy {on_degenerate!r}")
        if cross_tally_window is not None and cross_tally_window <= 0:
            raise InferenceError("cross_tally_window must be positive when given")
        self._hypotheses = list(hypotheses)
        if weights is None:
            weights = [1.0] * len(self._hypotheses)
        if len(weights) != len(self._hypotheses):
            raise InferenceError("weights and hypotheses must have the same length")
        self._weights = self._normalize(list(weights))
        self.kernel: LikelihoodKernel = kernel if kernel is not None else GaussianKernel(sigma=0.25)
        self.max_hypotheses = max_hypotheses
        self.prune_fraction = prune_fraction
        self.missing_grace = missing_grace
        self.cross_tally_window = cross_tally_window
        self.on_degenerate = on_degenerate
        #: Every sequence number acknowledged so far.
        self.acked_seqs: set[int] = set()
        #: Number of updates in which every hypothesis was rejected.
        self.degenerate_updates = 0
        #: Number of updates applied.
        self.updates_applied = 0
        #: Number of hypotheses merged away by compaction, cumulative.
        self.compacted_away = 0

    #: Name of the storage/execution backend this class implements.
    backend = "scalar"

    #: Optional per-stage checkpoint callback ``hook(stage, payload)`` fired
    #: during :meth:`update` at each kernel stage (``fork``, ``advance``,
    #: ``score``, ``compact``, ``prune``, ``posterior``).  Both backends emit
    #: the same stages with comparable payloads, which is what
    #: :mod:`repro.diagnostics` bisects to localize backend drift.  ``None``
    #: (the default) keeps the update loop checkpoint-free.
    stage_hook = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def for_backend(cls, backend: Optional[str]) -> type["BeliefState"]:
        """The BeliefState class implementing ``backend``.

        ``None`` keeps the class it was called on; named engines resolve
        through the :data:`~repro.api.backends.BELIEF_BACKENDS` registry,
        where ``"scalar"`` (this reference implementation) and
        ``"vectorized"`` (the NumPy struct-of-arrays engine in
        :mod:`repro.inference.vectorized`) self-register.  Unknown names
        raise :class:`~repro.errors.UnknownBackendError` listing the
        registered backends.
        """
        if backend is None:
            return cls
        return BELIEF_BACKENDS.resolve(backend)

    @classmethod
    def from_prior(
        cls,
        prior: Prior,
        hypothesis_factory: Optional[Callable[[Mapping[str, float]], Hypothesis]] = None,
        start_time: float = 0.0,
        backend: Optional[str] = None,
        **kwargs,
    ) -> "BeliefState":
        """Instantiate one hypothesis per prior grid point.

        ``hypothesis_factory`` maps a parameter assignment to a Hypothesis;
        by default :meth:`Hypothesis.from_params` is used, which covers every
        configuration expressible by the fast link model.  ``backend``
        selects the ensemble implementation (``"scalar"`` or
        ``"vectorized"``); by default the class the method is called on.
        """
        hypotheses: list[Hypothesis] = []
        weights: list[float] = []
        for assignment, probability in prior.combinations():
            if hypothesis_factory is not None:
                hypothesis = hypothesis_factory(assignment)
            else:
                hypothesis = Hypothesis.from_params(assignment, start_time=start_time)
            hypotheses.append(hypothesis)
            weights.append(probability)
        return cls.for_backend(backend)(hypotheses, weights, **kwargs)

    # -------------------------------------------------------------- inspection

    @property
    def hypotheses(self) -> list[Hypothesis]:
        """The current hypotheses (aligned with :attr:`weights`)."""
        return list(self._hypotheses)

    @property
    def weights(self) -> list[float]:
        """The current normalized weights (aligned with :attr:`hypotheses`)."""
        return list(self._weights)

    def __len__(self) -> int:
        return len(self._hypotheses)

    def __iter__(self):
        return iter(zip(self._hypotheses, self._weights))

    def top(self, count: int) -> list[tuple[Hypothesis, float]]:
        """The ``count`` highest-weight hypotheses, heaviest first.

        Uses a heap selection (O(n log count)) instead of sorting the whole
        ensemble; ``heapq.nlargest`` keeps the same stable tie-breaking as
        the full descending sort it replaces.
        """
        weights = self._weights
        order = heapq.nlargest(count, range(len(weights)), key=weights.__getitem__)
        return [(self._hypotheses[i], weights[i]) for i in order]

    def map_estimate(self) -> Hypothesis:
        """The maximum a-posteriori hypothesis."""
        index = max(range(len(self._weights)), key=lambda i: self._weights[i])
        return self._hypotheses[index]

    def map_link_rate_bps(self) -> float:
        """The MAP hypothesis's link rate (no materialization on any backend)."""
        return self.map_estimate().model.params.link_rate_bps

    def decision_signature(
        self, count: int, queue_resolution_bits: float
    ) -> tuple:
        """A coarse, hashable digest of the decision-relevant belief state.

        Used by :class:`~repro.core.policy.PolicyCache` as its memoization
        key: per top hypothesis, the parameter assignment, the weight
        rounded to 3 decimals, the gate state, the backlog rounded to
        ``queue_resolution_bits``, and whether the link is busy.  Backends
        produce identical tuples for equivalent ensembles.
        """
        parts = []
        for hypothesis, weight in self.top(count):
            model = hypothesis.model
            parts.append(
                (
                    tuple(sorted(hypothesis.params.items())),
                    round(weight, 3),
                    model.gate_on,
                    round(model.backlog_bits / queue_resolution_bits),
                    model.busy,
                )
            )
        return tuple(parts)

    def _weight_values(self) -> list[float]:
        """The normalized weights as a plain list (storage-backend hook)."""
        return self._weights

    def _parameter_dicts(self) -> Iterable[Mapping[str, float]]:
        """Per-hypothesis parameter assignments (storage-backend hook)."""
        return (hypothesis.params for hypothesis in self._hypotheses)

    def posterior_mean(self, parameter: str) -> float:
        """Posterior mean of one parameter across the ensemble."""
        total = 0.0
        for params, weight in zip(self._parameter_dicts(), self._weight_values()):
            value = params.get(parameter)
            if value is None:
                raise InferenceError(f"hypotheses carry no parameter named {parameter!r}")
            total += float(value) * weight
        return total

    def posterior_marginal(self, parameter: str) -> dict[float, float]:
        """Posterior probability of each distinct value of one parameter."""
        marginal: dict[float, float] = {}
        for params, weight in zip(self._parameter_dicts(), self._weight_values()):
            value = params.get(parameter)
            if value is None:
                raise InferenceError(f"hypotheses carry no parameter named {parameter!r}")
            marginal[value] = marginal.get(value, 0.0) + weight
        return marginal

    def effective_sample_size(self) -> float:
        """``1 / sum(w^2)`` — a standard measure of ensemble degeneracy."""
        total = 0.0
        for weight in self._weight_values():
            total += weight * weight
        return 1.0 / total

    def entropy(self) -> float:
        """Shannon entropy (nats) of the weight distribution."""
        log = math.log
        total = 0.0
        for weight in self._weight_values():
            if weight > 0.0:
                total += weight * log(weight)
        return -total

    # ------------------------------------------------------------------ update

    def record_send(self, seq: int, size_bits: float, time: float) -> None:
        """Inform every hypothesis that the sender transmitted packet ``seq``."""
        for hypothesis in self._hypotheses:
            hypothesis.record_send(seq, size_bits, time)

    def update(self, now: float, acks: Iterable[AckObservation] = ()) -> None:
        """Advance every hypothesis to ``now`` and condition on the new acks."""
        acks = list(acks)
        self.acked_seqs.update(ack.seq for ack in acks)

        candidates: list[Hypothesis] = []
        candidate_weights: list[float] = []
        fallback: list[Hypothesis] = []
        fallback_weights: list[float] = []

        hook = self.stage_hook
        parents: list[int] = []
        probabilities: list[float] = []
        branch_signatures: list[tuple] = []
        log_likelihoods: list[float] = []

        for parent_index, (hypothesis, weight) in enumerate(
            zip(self._hypotheses, self._weights)
        ):
            for branch, branch_probability in hypothesis.evolve(now):
                if branch_probability <= 0.0:
                    continue
                prior_weight = weight * branch_probability
                fallback.append(branch)
                fallback_weights.append(prior_weight)
                if hook is not None:
                    # Signatures must be captured before scoring: score()
                    # charges losses into the signature's lost-seq set.
                    parents.append(parent_index)
                    probabilities.append(branch_probability)
                    branch_signatures.append(branch.signature())
                log_likelihood = branch.score(
                    acks,
                    now,
                    self.kernel,
                    self.acked_seqs,
                    missing_grace=self.missing_grace,
                )
                if hook is not None:
                    log_likelihoods.append(log_likelihood)
                if log_likelihood == float("-inf"):
                    continue
                candidates.append(branch)
                candidate_weights.append(prior_weight * math.exp(log_likelihood))

        if hook is not None:
            hook("fork", {"parents": parents, "probabilities": probabilities})
            hook("advance", {"time": now, "signatures": branch_signatures})
            hook("score", {"log_likelihoods": log_likelihoods})

        self.updates_applied += 1
        if not candidates or sum(candidate_weights) <= 0.0:
            self.degenerate_updates += 1
            if self.on_degenerate == "raise":
                raise DegenerateBeliefError(
                    f"every hypothesis was rejected at t={now:.3f} "
                    f"({len(acks)} acknowledgements in the update)"
                )
            candidates, candidate_weights = fallback, fallback_weights

        candidates, candidate_weights = self._compact(candidates, candidate_weights)
        if hook is not None:
            hook("compact", {"count": len(candidates), "weights": list(candidate_weights)})
        candidates, candidate_weights = self._prune(candidates, candidate_weights)
        if hook is not None:
            hook("prune", {"count": len(candidates), "weights": list(candidate_weights)})
        self._hypotheses = candidates
        self._weights = self._normalize(candidate_weights)
        if hook is not None:
            hook(
                "posterior",
                {
                    "weights": list(self._weights),
                    "signatures": [h.signature() for h in self._hypotheses],
                },
            )
        if self.cross_tally_window is not None:
            # Bound per-model cross-tally history so long runs stay flat in
            # memory (clones copy these lists on every gate fork).
            cutoff = now - self.cross_tally_window
            for hypothesis in self._hypotheses:
                hypothesis.model.cross.trim(cutoff)

    # ----------------------------------------------------------------- helpers

    def _compact(
        self, hypotheses: list[Hypothesis], weights: list[float]
    ) -> tuple[list[Hypothesis], list[float]]:
        """Merge hypotheses whose latent states have become identical (§3.2)."""
        merged: dict[tuple, int] = {}
        kept: list[Hypothesis] = []
        kept_weights: list[float] = []
        for hypothesis, weight in zip(hypotheses, weights):
            key = hypothesis.signature()
            if key in merged:
                kept_weights[merged[key]] += weight
                self.compacted_away += 1
            else:
                merged[key] = len(kept)
                kept.append(hypothesis)
                kept_weights.append(weight)
        return kept, kept_weights

    def _prune(
        self, hypotheses: list[Hypothesis], weights: list[float]
    ) -> tuple[list[Hypothesis], list[float]]:
        """Drop negligible-weight hypotheses and enforce the ensemble cap."""
        if not hypotheses:
            return hypotheses, weights
        heaviest = max(weights)
        threshold = heaviest * self.prune_fraction
        survivors = [
            (hypothesis, weight)
            for hypothesis, weight in zip(hypotheses, weights)
            if weight >= threshold
        ]
        survivors.sort(key=lambda pair: pair[1], reverse=True)
        survivors = survivors[: self.max_hypotheses]
        kept = [hypothesis for hypothesis, _ in survivors]
        kept_weights = [weight for _, weight in survivors]
        return kept, kept_weights

    @staticmethod
    def _normalize(weights: list[float]) -> list[float]:
        total = sum(weights)
        if total <= 0.0:
            raise InferenceError("cannot normalize an all-zero weight vector")
        return [weight / total for weight in weights]


BELIEF_BACKENDS.register("scalar", BeliefState)
