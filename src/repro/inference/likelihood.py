"""Likelihood kernels for scoring predicted against observed delivery times.

The paper's inference engine uses rejection sampling: a hypothesis is kept
only if it reproduces the observations exactly (§3.2).  That works when the
discretized prior contains the true parameter values and the hypothesis
simulates the network at full fidelity.  Our fast link model discretizes the
latent switching times of the cross-traffic gate, so predicted delivery
times can be off by a bounded amount even for the "right" hypothesis; the
Gaussian kernel turns that mismatch into a smooth likelihood instead of a
hard reject.  Both kernels are provided; experiments choose per scenario.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.errors import ConfigurationError


class LikelihoodKernel(Protocol):
    """Maps a predicted-vs-observed timing error to a (log-)likelihood factor."""

    def log_weight(self, error_seconds: float) -> float:
        """Log-likelihood contribution of a timing error (``-inf`` to reject)."""
        ...


def log_weight_batch(kernel: "LikelihoodKernel", errors):
    """Evaluate ``kernel`` over a NumPy array of timing errors.

    Kernels that define ``log_weight_batch`` (both built-in kernels do) are
    evaluated as a single array expression; any other kernel falls back to a
    per-element loop so custom kernels keep working with the vectorized
    inference backend.
    """
    batch = getattr(kernel, "log_weight_batch", None)
    if batch is not None:
        return batch(errors)
    import numpy

    return numpy.array([kernel.log_weight(float(error)) for error in errors], dtype=float)


class ExactMatchKernel:
    """Rejection sampling: accept iff the timing error is within a tolerance.

    Parameters
    ----------
    tolerance:
        Maximum absolute error, in seconds, still considered "exact".  A
        small non-zero default absorbs floating-point noise.
    """

    def __init__(self, tolerance: float = 1e-6) -> None:
        if tolerance < 0:
            raise ConfigurationError(f"tolerance must be non-negative, got {tolerance!r}")
        self.tolerance = tolerance

    def log_weight(self, error_seconds: float) -> float:
        if abs(error_seconds) <= self.tolerance:
            return 0.0
        return float("-inf")

    def log_weight_batch(self, errors):
        """Vectorized :meth:`log_weight` over a NumPy array of errors."""
        import numpy

        return numpy.where(numpy.abs(errors) <= self.tolerance, 0.0, -numpy.inf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactMatchKernel(tolerance={self.tolerance})"


class GaussianKernel:
    """A smooth timing-error kernel: ``exp(-error^2 / (2 sigma^2))``.

    Parameters
    ----------
    sigma:
        Standard deviation, in seconds, of tolerated timing error.
    hard_cutoff_sigmas:
        Errors beyond this many sigmas reject the hypothesis outright, which
        keeps wildly wrong configurations from lingering with tiny weights.
    """

    def __init__(self, sigma: float, hard_cutoff_sigmas: float = 6.0) -> None:
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma!r}")
        if hard_cutoff_sigmas <= 0:
            raise ConfigurationError(
                f"hard_cutoff_sigmas must be positive, got {hard_cutoff_sigmas!r}"
            )
        self.sigma = sigma
        self.hard_cutoff_sigmas = hard_cutoff_sigmas

    def log_weight(self, error_seconds: float) -> float:
        scaled = error_seconds / self.sigma
        if abs(scaled) > self.hard_cutoff_sigmas:
            return float("-inf")
        return -0.5 * scaled * scaled

    def log_weight_batch(self, errors):
        """Vectorized :meth:`log_weight` over a NumPy array of errors.

        Pure arithmetic, so each element is bit-identical to the scalar
        :meth:`log_weight` result.
        """
        import numpy

        scaled = errors / self.sigma
        out = -0.5 * scaled * scaled
        out = numpy.where(numpy.abs(scaled) > self.hard_cutoff_sigmas, -numpy.inf, out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaussianKernel(sigma={self.sigma})"
