"""One candidate network configuration, with forking and scoring.

A :class:`Hypothesis` couples a :class:`~repro.inference.linkmodel.LinkModel`
(one fully specified configuration and its latent state) with the machinery
the belief state needs:

* **evolve** — advance the model to the current time.  If the configuration
  contains a memoryless cross-traffic gate, the hypothesis *forks* into a
  "gate stayed put" branch and a "gate switched" branch, weighted by the
  exponential dwell probability (§3.2: nondeterministic elements fork the
  model).  The switch time is discretized to the midpoint of the interval.
* **score** — compute the log-likelihood of the acknowledgements observed
  since the last wake-up.  Predicted deliveries are compared to observed
  times through a likelihood kernel; missing acknowledgements for packets
  that should have arrived are explained by last-mile stochastic loss.
* **rollout** — simulate the consequences of a candidate action ("send after
  delay d") over a finite horizon and report the outcome that the planner's
  utility function consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.inference.likelihood import LikelihoodKernel
from repro.inference.linkmodel import LinkModel, LinkModelParams
from repro.inference.observation import AckObservation

#: Sequence number used for the hypothetical packet injected by rollouts.
HYPOTHETICAL_SEQ = -1_000_000


@dataclass(slots=True)
class RolloutOutcome:
    """What a rollout predicts will happen if the sender takes an action.

    All lists hold ``(time, bits, survival_probability)`` tuples; drops carry
    a survival probability of zero by construction but keep the same shape so
    utility functions can treat the lists uniformly.
    """

    decision_time: float
    action_delay: float
    horizon: float
    own_deliveries: list[tuple[float, float, float]] = field(default_factory=list)
    own_drops: list[tuple[float, float]] = field(default_factory=list)
    cross_deliveries: list[tuple[float, float, float]] = field(default_factory=list)
    cross_drops: list[tuple[float, float]] = field(default_factory=list)
    hypothetical_delivered: bool = False
    hypothetical_delivery_time: Optional[float] = None
    final_queue_bits: float = 0.0
    final_cross_backlog_bits: float = 0.0


class Hypothesis:
    """A weighted candidate configuration of the network."""

    __slots__ = ("params", "model", "_resolved", "_lost_seqs")

    def __init__(self, params: Mapping[str, float], model: LinkModel) -> None:
        #: The parameter assignment this hypothesis was built from.
        self.params = dict(params)
        #: The forward model holding the latent state.
        self.model = model
        self._resolved: set[int] = set()
        self._lost_seqs: set[int] = set()

    # ------------------------------------------------------------------ clone

    def clone(self) -> "Hypothesis":
        """Deep-enough copy: the model is cloned, bookkeeping sets are copied."""
        duplicate = Hypothesis(self.params, self.model.clone())
        duplicate._resolved = set(self._resolved)
        duplicate._lost_seqs = set(self._lost_seqs)
        return duplicate

    # ----------------------------------------------------------- state export

    def export_state(self) -> dict:
        """Model latent state plus scoring bookkeeping, in a batchable layout."""
        state = self.model.export_state()
        state["resolved"] = sorted(self._resolved)
        state["lost"] = sorted(self._lost_seqs)
        return state

    @classmethod
    def from_state(cls, params: Mapping[str, float], model_params, state: dict) -> "Hypothesis":
        """Rebuild a hypothesis from :meth:`export_state` output."""
        hypothesis = cls(params, LinkModel.from_state(model_params, state))
        hypothesis._resolved = set(state["resolved"])
        hypothesis._lost_seqs = set(state["lost"])
        return hypothesis

    # ---------------------------------------------------------------- sending

    def record_send(self, seq: int, size_bits: float, time: float) -> None:
        """Tell the hypothesis that the sender transmitted packet ``seq``."""
        self.model.send_own(seq, size_bits, time)

    # ----------------------------------------------------------------- evolve

    def evolve(self, until: float) -> list[tuple["Hypothesis", float]]:
        """Advance to ``until``; fork on the latent cross-traffic gate.

        Returns a list of ``(hypothesis, branch_probability)`` pairs.  The
        receiving object itself carries the "no switch" branch; forked
        branches are clones.
        """
        interval = until - self.model.time
        if interval <= 1e-12:
            return [(self, 1.0)]
        mtts = self.model.params.mean_time_to_switch
        if mtts is None or not self.model.params.has_cross_traffic:
            self.model.advance(until)
            return [(self, 1.0)]

        switch_probability = 1.0 - math.exp(-interval / mtts)
        stay_probability = 1.0 - switch_probability

        switched = self.clone()
        midpoint = self.model.time + interval / 2.0
        switched.model.advance(midpoint)
        switched.model.set_gate(not switched.model.gate_on, midpoint)
        switched.model.advance(until)

        self.model.advance(until)
        return [(self, stay_probability), (switched, switch_probability)]

    # ------------------------------------------------------------------ score

    def score(
        self,
        acks: Iterable[AckObservation],
        now: float,
        kernel: LikelihoodKernel,
        acked_seqs: set[int],
        missing_grace: float = 0.0,
    ) -> float:
        """Log-likelihood of the newly observed acknowledgements.

        Parameters
        ----------
        acks:
            Acknowledgements that arrived since the previous update.
        now:
            Current time (the update time).
        kernel:
            Timing-error likelihood kernel.
        acked_seqs:
            Every sequence number acknowledged so far (including ``acks``).
        missing_grace:
            Extra seconds to wait past a predicted delivery before concluding
            the packet was lost, absorbing small timing error.
        """
        log_likelihood = 0.0
        loss_rate = self.model.params.loss_rate

        for ack in acks:
            if ack.seq in self._lost_seqs:
                # We already charged this packet as lost; an acknowledgement
                # arriving later contradicts this hypothesis outright.
                return float("-inf")
            prediction = self.model.predictions.get(ack.seq)
            if prediction is None:
                projected = self.model.projected_delivery(ack.seq)
                if projected is None:
                    return float("-inf")
                error = projected - ack.received_at
                survival = 1.0 - loss_rate
            elif not prediction.delivered:
                return float("-inf")
            else:
                error = prediction.time - ack.received_at
                survival = prediction.survival
            contribution = kernel.log_weight(error)
            if contribution == float("-inf"):
                return float("-inf")
            log_likelihood += contribution
            if survival < 1.0:
                log_likelihood += math.log(survival) if survival > 0.0 else float("-inf")
            self._resolved.add(ack.seq)

        # Packets the model says should have been delivered by now but were
        # never acknowledged must have been lost at the last mile.
        for seq, prediction in self.model.predictions.items():
            if seq in self._resolved or seq in acked_seqs:
                continue
            if not prediction.delivered:
                continue
            if prediction.time > now - missing_grace:
                continue
            if loss_rate <= 0.0:
                return float("-inf")
            log_likelihood += math.log(loss_rate)
            self._resolved.add(seq)
            self._lost_seqs.add(seq)

        return log_likelihood

    # -------------------------------------------------------------- signature

    def signature(self) -> tuple:
        """Hashable digest used to compact identical hypotheses."""
        params_key = tuple(sorted(self.params.items()))
        return (params_key, self.model.signature(), frozenset(self._lost_seqs))

    # ---------------------------------------------------------------- rollout

    def rollout(
        self,
        action_delay: float,
        horizon: float,
        packet_bits: float,
        now: Optional[float] = None,
        send_packet: bool = True,
    ) -> RolloutOutcome:
        """Predict the consequences of sending one packet after ``action_delay``.

        The rollout clones the model, injects a hypothetical packet at
        ``now + action_delay`` (unless ``send_packet`` is false, which models
        the pure "stay silent" strategy), and advances to ``now + horizon``
        with the cross-traffic gate frozen in its current state.
        """
        decision_time = self.model.time if now is None else now
        scratch = self.model.clone(keep_history=False)
        if scratch.time < decision_time:
            scratch.advance(decision_time)
        end = decision_time + horizon

        if send_packet:
            send_time = decision_time + action_delay
            scratch.send_own(HYPOTHETICAL_SEQ, packet_bits, send_time)
        # A candidate delay may exceed the horizon (the planner's action grid
        # is built independently of it); never ask the model to run backwards.
        scratch.advance(max(end, scratch.time))

        outcome = RolloutOutcome(
            decision_time=decision_time,
            action_delay=action_delay,
            horizon=horizon,
            final_queue_bits=scratch.backlog_bits,
            final_cross_backlog_bits=scratch.cross_backlog_bits(),
        )
        for seq, prediction in scratch.predictions.items():
            if prediction.delivered:
                entry = (prediction.time, packet_bits, prediction.survival)
                outcome.own_deliveries.append(entry)
                if seq == HYPOTHETICAL_SEQ:
                    outcome.hypothetical_delivered = True
                    outcome.hypothetical_delivery_time = prediction.time
            else:
                outcome.own_drops.append((prediction.time, packet_bits))
        survival = 1.0 - scratch.params.loss_rate
        for time, bits in scratch.cross.deliveries:
            if decision_time <= time < end:
                outcome.cross_deliveries.append((time, bits, survival))
        for time, bits in scratch.cross.drops:
            if decision_time <= time < end:
                outcome.cross_drops.append((time, bits))
        return outcome

    # ------------------------------------------------------------- conversion

    @classmethod
    def from_params(
        cls,
        params: Mapping[str, float],
        start_time: float = 0.0,
        **overrides: float,
    ) -> "Hypothesis":
        """Build a hypothesis whose model is configured directly from ``params``.

        The mapping must contain keys understood by
        :class:`~repro.inference.linkmodel.LinkModelParams`; extra keys are
        kept on the hypothesis (they may drive other aspects of an
        experiment) but ignored by the model.
        """
        model_fields = {
            "link_rate_bps",
            "buffer_capacity_bits",
            "initial_fill_bits",
            "loss_rate",
            "cross_rate_pps",
            "cross_packet_bits",
            "mean_time_to_switch",
            "cross_initially_on",
            "filler_packet_bits",
        }
        kwargs = {key: value for key, value in params.items() if key in model_fields}
        kwargs.update(overrides)
        if "cross_initially_on" in kwargs:
            kwargs["cross_initially_on"] = bool(kwargs["cross_initially_on"])
        model = LinkModel(LinkModelParams(**kwargs), start_time=start_time)
        return cls(params, model)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypothesis(params={self.params}, model={self.model!r})"
