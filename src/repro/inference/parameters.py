"""Discretized parameter grids.

The paper's prior is "a discretized uniform distribution" over ranges of the
unknown network parameters (§4).  A :class:`ParameterSpec` describes the
support of one parameter; a :class:`ParameterGrid` is the Cartesian product
of several specs and can enumerate every combination with its prior
probability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import ConfigurationError


def uniform_grid(low: float, high: float, count: int) -> tuple[float, ...]:
    """``count`` evenly spaced values covering ``[low, high]`` inclusive."""
    if count < 1:
        raise ConfigurationError(f"count must be at least 1, got {count!r}")
    if high < low:
        raise ConfigurationError(f"high ({high!r}) must not be below low ({low!r})")
    if count == 1:
        return (low,)
    step = (high - low) / (count - 1)
    return tuple(low + step * index for index in range(count))


@dataclass(frozen=True)
class ParameterSpec:
    """The discretized support of one unknown parameter.

    Attributes
    ----------
    name:
        Parameter name (e.g. ``"link_rate_bps"``).
    values:
        The discrete support.
    weights:
        Optional prior weights, one per value; uniform when omitted.  They
        need not be normalized.
    """

    name: str
    values: tuple[float, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"parameter {self.name!r} needs at least one value")
        if self.weights is not None:
            if len(self.weights) != len(self.values):
                raise ConfigurationError(
                    f"parameter {self.name!r}: {len(self.weights)} weights for "
                    f"{len(self.values)} values"
                )
            if any(weight < 0 for weight in self.weights):
                raise ConfigurationError(f"parameter {self.name!r}: weights must be non-negative")
            if sum(self.weights) <= 0:
                raise ConfigurationError(f"parameter {self.name!r}: weights must not all be zero")

    def normalized_weights(self) -> tuple[float, ...]:
        """Prior probabilities of each value (summing to one)."""
        if self.weights is None:
            probability = 1.0 / len(self.values)
            return tuple(probability for _ in self.values)
        total = sum(self.weights)
        return tuple(weight / total for weight in self.weights)

    @property
    def size(self) -> int:
        """Number of discrete values."""
        return len(self.values)


@dataclass(frozen=True)
class ParameterGrid:
    """The Cartesian product of several :class:`ParameterSpec` objects."""

    specs: tuple[ParameterSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.specs]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate parameter names in grid: {names}")

    @property
    def size(self) -> int:
        """Total number of parameter combinations."""
        total = 1
        for spec in self.specs:
            total *= spec.size
        return total

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the parameters, in grid order."""
        return tuple(spec.name for spec in self.specs)

    def spec(self, name: str) -> ParameterSpec:
        """Look up one spec by name."""
        for candidate in self.specs:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no parameter named {name!r} in grid")

    def combinations(self) -> Iterator[tuple[Mapping[str, float], float]]:
        """Yield ``(assignment, prior_probability)`` for every combination."""
        value_lists = [spec.values for spec in self.specs]
        weight_lists = [spec.normalized_weights() for spec in self.specs]
        for values, weights in zip(
            itertools.product(*value_lists), itertools.product(*weight_lists)
        ):
            assignment = dict(zip(self.names, values))
            probability = 1.0
            for weight in weights:
                probability *= weight
            yield assignment, probability

    def with_spec(self, spec: ParameterSpec) -> "ParameterGrid":
        """Return a new grid with ``spec`` added or replaced."""
        kept = tuple(existing for existing in self.specs if existing.name != spec.name)
        return ParameterGrid(specs=kept + (spec,))

    @classmethod
    def from_dict(cls, values: Mapping[str, Sequence[float]]) -> "ParameterGrid":
        """Build a grid from ``{name: [values...]}`` with uniform weights."""
        specs = tuple(ParameterSpec(name=name, values=tuple(vals)) for name, vals in values.items())
        return cls(specs=specs)
