"""Prior distributions over network configurations.

A :class:`Prior` is a thin wrapper around a
:class:`~repro.inference.parameters.ParameterGrid` whose parameter names are
understood by :class:`~repro.inference.linkmodel.LinkModelParams`.  The
module also provides the two priors the experiments use:

* :func:`figure3_prior` — the §4 prior of the paper (link speed, cross rate,
  loss rate, buffer capacity, initial fullness, mean time to switch), with a
  configurable grid resolution.
* :func:`single_link_prior` — a smaller prior for the "simple configuration"
  scenarios (unknown link speed and initial buffer fullness only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.inference.parameters import ParameterGrid, ParameterSpec, uniform_grid
from repro.units import DEFAULT_PACKET_BITS


@dataclass(frozen=True)
class Prior:
    """A prior distribution over discretized network configurations."""

    grid: ParameterGrid
    #: Parameters shared by every configuration (not part of the grid).
    fixed: Mapping[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.fixed is None:
            object.__setattr__(self, "fixed", {})

    @property
    def size(self) -> int:
        """Number of configurations in the prior's support."""
        return self.grid.size

    def combinations(self) -> Iterator[tuple[dict[str, float], float]]:
        """Yield ``(parameter assignment, prior probability)`` pairs."""
        for assignment, probability in self.grid.combinations():
            merged = dict(self.fixed)
            merged.update(assignment)
            yield merged, probability

    def parameter_values(self, name: str) -> Sequence[float]:
        """The discrete support of one gridded parameter."""
        return self.grid.spec(name).values

    def contains_value(self, name: str, value: float, tolerance: float = 1e-9) -> bool:
        """Whether ``value`` appears in the support of parameter ``name``."""
        return any(abs(candidate - value) <= tolerance for candidate in self.parameter_values(name))


def figure3_prior(
    link_rate_low: float = 10_000.0,
    link_rate_high: float = 16_000.0,
    link_rate_points: int = 4,
    cross_fraction_low: float = 0.4,
    cross_fraction_high: float = 0.7,
    cross_fraction_points: int = 4,
    loss_low: float = 0.0,
    loss_high: float = 0.2,
    loss_points: int = 3,
    buffer_low: float = 72_000.0,
    buffer_high: float = 108_000.0,
    buffer_points: int = 3,
    fill_points: int = 2,
    mean_time_to_switch: float = 100.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
    include_gate_uncertainty: bool = False,
) -> Prior:
    """The paper's §4 prior, discretized.

    The ranges default to the table in §4:

    =====================  =======================  ==========
    Parameter              Prior range              True value
    =====================  =======================  ==========
    c (link speed)         10,000 – 16,000 bit/s    12,000
    r (cross rate)         0.4 c – 0.7 c            0.7 c
    t (mean time to switch) 100 s (fixed)            n/a
    p (loss rate)          0 – 0.2                  0.2
    buffer capacity        72,000 – 108,000 bits    96,000
    initial fullness       0 – capacity             0
    =====================  =======================  ==========

    ``*_points`` control the grid resolution (coarser grids keep the
    rejection-sampling ensemble small, as the paper notes is necessary).
    The cross-traffic rate is gridded as a *fraction of the link speed*, as
    in the paper's table, and converted to packets per second per
    configuration.

    With ``include_gate_uncertainty`` the sender is also unsure whether the
    cross traffic is initially on (the paper's sender starts with cross
    traffic on, so the default leaves this out of the grid).
    """
    if link_rate_points < 1 or cross_fraction_points < 1:
        raise ConfigurationError("grid resolutions must be at least 1")

    link_values = uniform_grid(link_rate_low, link_rate_high, link_rate_points)
    fraction_values = uniform_grid(cross_fraction_low, cross_fraction_high, cross_fraction_points)
    loss_values = uniform_grid(loss_low, loss_high, loss_points)
    buffer_values = uniform_grid(buffer_low, buffer_high, buffer_points)
    fill_fractions = uniform_grid(0.0, 1.0, fill_points) if fill_points > 1 else (0.0,)

    # The cross rate and initial fill are defined relative to other gridded
    # parameters, so the grid stores the *relative* quantities and the
    # Hypothesis factory resolves them.  To keep Hypothesis.from_params
    # usable directly, we expand the relative parameters into absolute ones
    # here by enumerating the joint support explicitly.
    specs = [
        ParameterSpec("link_rate_bps", link_values),
        ParameterSpec("cross_fraction", fraction_values),
        ParameterSpec("loss_rate", loss_values),
        ParameterSpec("buffer_capacity_bits", buffer_values),
        ParameterSpec("fill_fraction", fill_fractions),
    ]
    if include_gate_uncertainty:
        specs.append(ParameterSpec("cross_initially_on", (0.0, 1.0)))
    grid = ParameterGrid(specs=tuple(specs))
    fixed = {
        "mean_time_to_switch": mean_time_to_switch,
        "cross_packet_bits": packet_bits,
        "packet_bits": packet_bits,
    }
    return DerivedPrior(grid=grid, fixed=fixed)


def single_link_prior(
    link_rate_low: float = 8_000.0,
    link_rate_high: float = 16_000.0,
    link_rate_points: int = 5,
    buffer_capacity_bits: float = 96_000.0,
    fill_points: int = 3,
    loss_rate: float = 0.0,
    cross_rate_pps: float = 0.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
) -> Prior:
    """Prior for the §4 "simple configuration": unknown link speed and fullness."""
    link_values = uniform_grid(link_rate_low, link_rate_high, link_rate_points)
    fill_fractions = uniform_grid(0.0, 1.0, fill_points) if fill_points > 1 else (0.0,)
    grid = ParameterGrid(
        specs=(
            ParameterSpec("link_rate_bps", link_values),
            ParameterSpec("fill_fraction", fill_fractions),
        )
    )
    fixed = {
        "buffer_capacity_bits": buffer_capacity_bits,
        "loss_rate": loss_rate,
        "cross_packet_bits": packet_bits,
        "packet_bits": packet_bits,
    }
    if cross_rate_pps > 0:
        fixed["cross_rate_pps"] = cross_rate_pps
        fixed["cross_fraction"] = cross_rate_pps * packet_bits / ((link_rate_low + link_rate_high) / 2)
    return DerivedPrior(grid=grid, fixed=fixed)


class DerivedPrior(Prior):
    """A prior whose grid contains *relative* parameters.

    ``cross_fraction`` (cross rate as a fraction of the link speed) and
    ``fill_fraction`` (initial fullness as a fraction of the buffer
    capacity) are resolved into the absolute ``cross_rate_pps`` and
    ``initial_fill_bits`` the link model needs.
    """

    def combinations(self) -> Iterator[tuple[dict[str, float], float]]:
        for assignment, probability in super().combinations():
            resolved = dict(assignment)
            packet_bits = resolved.get("cross_packet_bits", DEFAULT_PACKET_BITS)
            if "cross_fraction" in resolved and "cross_rate_pps" not in resolved:
                fraction = resolved["cross_fraction"]
                resolved["cross_rate_pps"] = fraction * resolved["link_rate_bps"] / packet_bits
            if "fill_fraction" in resolved and "initial_fill_bits" not in resolved:
                resolved["initial_fill_bits"] = (
                    resolved["fill_fraction"] * resolved["buffer_capacity_bits"]
                )
            yield resolved, probability
