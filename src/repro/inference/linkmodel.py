"""A fast packet-level model of the Figure-2 topology class.

One :class:`LinkModel` instance represents a single *possible configuration*
of the network between the sender and its receiver: an isochronous cross
traffic source (the PINGER) gated on/off, a shared tail-drop BUFFER, a
THROUGHPUT-limited link, and last-mile stochastic LOSS — exactly the
composition of the paper's Figure 2.

It is deterministic given its latent state: the only randomness in the real
network (stochastic loss, the gate's memoryless switching) is handled by the
layers above — last-mile loss becomes a survival probability on each
predicted delivery (folded into the acknowledgement likelihood), and gate
switching is handled by the Hypothesis layer forking model clones.

The class is deliberately lean because the belief state clones and advances
hundreds of these models on every sender wake-up.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, InferenceError
from repro.units import DEFAULT_PACKET_BITS

#: Flow label used for the sender's own traffic inside the model.
OWN = "own"

#: Flow label used for cross traffic (and the initial buffer fill) inside the model.
CROSS = "cross"


@dataclass(frozen=True)
class LinkModelParams:
    """Static parameters of one candidate network configuration.

    These are the quantities the paper's prior ranges over (§4): link speed,
    buffer capacity and initial fullness, cross-traffic rate, stochastic loss
    rate, and the cross-traffic gate's mean time to switch.
    """

    link_rate_bps: float
    buffer_capacity_bits: float
    initial_fill_bits: float = 0.0
    loss_rate: float = 0.0
    cross_rate_pps: float = 0.0
    cross_packet_bits: float = DEFAULT_PACKET_BITS
    mean_time_to_switch: Optional[float] = None
    cross_initially_on: bool = True
    filler_packet_bits: float = DEFAULT_PACKET_BITS

    def __post_init__(self) -> None:
        if self.link_rate_bps <= 0:
            raise ConfigurationError("link_rate_bps must be positive")
        if self.buffer_capacity_bits <= 0:
            raise ConfigurationError("buffer_capacity_bits must be positive")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must lie in [0, 1]")
        if self.initial_fill_bits < 0 or self.initial_fill_bits > self.buffer_capacity_bits:
            raise ConfigurationError("initial_fill_bits must lie in [0, buffer capacity]")
        if self.cross_rate_pps < 0:
            raise ConfigurationError("cross_rate_pps must be non-negative")
        if self.mean_time_to_switch is not None and self.mean_time_to_switch <= 0:
            raise ConfigurationError("mean_time_to_switch must be positive when given")

    @property
    def cross_rate_bps(self) -> float:
        """Cross-traffic offered load in bits per second while the gate is on."""
        return self.cross_rate_pps * self.cross_packet_bits

    @property
    def has_cross_traffic(self) -> bool:
        """Whether the configuration contains a cross-traffic source at all."""
        return self.cross_rate_pps > 0


@dataclass(frozen=True, slots=True)
class Prediction:
    """The model's prediction for one of the sender's own packets."""

    seq: int
    kind: str  # "delivered" or "dropped"
    time: float
    survival: float

    @property
    def delivered(self) -> bool:
        """Whether the packet is predicted to reach the receiver (before loss)."""
        return self.kind == "delivered"


@dataclass(slots=True)
class _QueuedPacket:
    """A packet sitting in the modelled buffer or in service on the link."""

    flow: str
    seq: int
    size_bits: float


@dataclass(slots=True)
class CrossTally:
    """Cross-traffic outcomes accumulated by the model (used for utility)."""

    deliveries: list[tuple[float, float]] = field(default_factory=list)
    drops: list[tuple[float, float]] = field(default_factory=list)

    def delivered_bits(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        """Bits delivered to the cross receiver within ``[start, end)``."""
        return sum(bits for time, bits in self.deliveries if start <= time < end)

    def dropped_bits(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        """Cross bits lost to buffer overflow within ``[start, end)``."""
        return sum(bits for time, bits in self.drops if start <= time < end)

    def trim(self, cutoff: float) -> int:
        """Drop entries recorded before ``cutoff``; returns how many went.

        Entries are appended in nondecreasing time order, so a binary
        search finds the survivors.  Belief states call this every update
        to keep long-running models' tallies (which clones copy wholesale)
        bounded by the scoring window.
        """
        removed = 0
        for entries in (self.deliveries, self.drops):
            if entries and entries[0][0] < cutoff:
                index = bisect.bisect_left(entries, (cutoff,))
                del entries[:index]
                removed += index
        return removed


class LinkModel:
    """Deterministic forward model of one candidate network configuration."""

    __slots__ = (
        "params",
        "time",
        "gate_on",
        "next_cross_time",
        "_next_cross_seq",
        "_queue",
        "_queue_bits",
        "_in_service",
        "_service_completion",
        "predictions",
        "cross",
        "own_sent",
    )

    def __init__(self, params: LinkModelParams, start_time: float = 0.0) -> None:
        self.params = params
        self.time = float(start_time)
        self.gate_on = params.cross_initially_on and params.has_cross_traffic
        self.next_cross_time = float(start_time) if self.gate_on else float("inf")
        self._next_cross_seq = 0
        self._queue: deque[_QueuedPacket] = deque()
        self._queue_bits = 0.0
        self._in_service: Optional[_QueuedPacket] = None
        self._service_completion = float("inf")
        #: Predictions for the sender's own packets, keyed by sequence number.
        self.predictions: dict[int, Prediction] = {}
        #: Cross-traffic outcome tallies (used by the planner's utility).
        self.cross = CrossTally()
        #: Times at which the sender's own packets entered this model.
        self.own_sent: dict[int, float] = {}
        self._load_initial_fill(start_time)

    # ------------------------------------------------------------------ state

    @property
    def queue_bits(self) -> float:
        """Bits waiting in the modelled buffer (excluding the packet in service)."""
        return self._queue_bits

    @property
    def queue_packets(self) -> int:
        """Number of packets waiting in the modelled buffer."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """Whether the modelled link is currently transmitting."""
        return self._in_service is not None

    @property
    def backlog_bits(self) -> float:
        """Queued bits plus the size of the packet in service, if any."""
        extra = self._in_service.size_bits if self._in_service is not None else 0.0
        return self._queue_bits + extra

    @property
    def free_buffer_bits(self) -> float:
        """Remaining buffer capacity in bits."""
        return self.params.buffer_capacity_bits - self._queue_bits

    def cross_backlog_bits(self) -> float:
        """Cross-traffic bits still queued or in service (used by latency penalties)."""
        total = sum(packet.size_bits for packet in self._queue if packet.flow == CROSS)
        if self._in_service is not None and self._in_service.flow == CROSS:
            total += self._in_service.size_bits
        return total

    def drain_time(self) -> float:
        """Seconds needed to transmit everything currently queued or in service."""
        remaining = self._queue_bits
        if self._in_service is not None:
            remaining += max(0.0, (self._service_completion - self.time) * self.params.link_rate_bps)
            return remaining / self.params.link_rate_bps
        return remaining / self.params.link_rate_bps

    def predicted_delivery_if_sent_now(self, size_bits: float) -> float:
        """Delivery time of a packet enqueued right now (ignoring future arrivals)."""
        if self._in_service is None:
            return self.time + size_bits / self.params.link_rate_bps
        service_remaining = self._service_completion - self.time
        return (
            self.time
            + service_remaining
            + (self._queue_bits + size_bits) / self.params.link_rate_bps
        )

    # ------------------------------------------------------------------ clone

    def clone(self, keep_history: bool = True) -> "LinkModel":
        """Return an independent copy of the model.

        With ``keep_history=False`` the cross-traffic tallies and resolved
        predictions are not copied, which is what planner rollouts want: they
        only care about what happens after the decision time.
        """
        duplicate = LinkModel.__new__(LinkModel)
        duplicate.params = self.params
        duplicate.time = self.time
        duplicate.gate_on = self.gate_on
        duplicate.next_cross_time = self.next_cross_time
        duplicate._next_cross_seq = self._next_cross_seq
        duplicate._queue = deque(
            _QueuedPacket(p.flow, p.seq, p.size_bits) for p in self._queue
        )
        duplicate._queue_bits = self._queue_bits
        if self._in_service is not None:
            duplicate._in_service = _QueuedPacket(
                self._in_service.flow, self._in_service.seq, self._in_service.size_bits
            )
        else:
            duplicate._in_service = None
        duplicate._service_completion = self._service_completion
        if keep_history:
            duplicate.predictions = dict(self.predictions)
            duplicate.cross = CrossTally(
                deliveries=list(self.cross.deliveries), drops=list(self.cross.drops)
            )
            duplicate.own_sent = dict(self.own_sent)
        else:
            duplicate.predictions = {}
            duplicate.cross = CrossTally()
            duplicate.own_sent = {}
        return duplicate

    # ----------------------------------------------------------- state export

    def export_state(self) -> dict:
        """The latent state as a plain dict of scalars and flat sequences.

        This is the batchable layout the vectorized inference backend packs
        into struct-of-arrays buffers: every entry is either a scalar or a
        list of fixed-width tuples, with no references back into the model.
        ``cross`` tallies are intentionally excluded — they are history, not
        latent state, and the vectorized ensemble does not retain them.
        """
        return {
            "time": self.time,
            "gate_on": self.gate_on,
            "next_cross_time": self.next_cross_time,
            "next_cross_seq": self._next_cross_seq,
            "queue": [(p.flow, p.seq, p.size_bits) for p in self._queue],
            "queue_bits": self._queue_bits,
            "in_service": (
                (self._in_service.flow, self._in_service.seq, self._in_service.size_bits)
                if self._in_service is not None
                else None
            ),
            "service_completion": self._service_completion,
            "predictions": [
                (p.seq, p.kind, p.time, p.survival) for p in self.predictions.values()
            ],
            "own_sent": dict(self.own_sent),
        }

    @classmethod
    def from_state(cls, params: LinkModelParams, state: dict) -> "LinkModel":
        """Rebuild a model from :meth:`export_state` output (inverse operation)."""
        model = cls.__new__(cls)
        model.params = params
        model.time = float(state["time"])
        model.gate_on = bool(state["gate_on"])
        model.next_cross_time = float(state["next_cross_time"])
        model._next_cross_seq = int(state["next_cross_seq"])
        model._queue = deque(
            _QueuedPacket(flow, seq, size) for flow, seq, size in state["queue"]
        )
        model._queue_bits = float(state["queue_bits"])
        in_service = state["in_service"]
        if in_service is not None:
            model._in_service = _QueuedPacket(in_service[0], in_service[1], in_service[2])
        else:
            model._in_service = None
        model._service_completion = float(state["service_completion"])
        model.predictions = {
            seq: Prediction(seq=seq, kind=kind, time=time, survival=survival)
            for seq, kind, time, survival in state["predictions"]
        }
        model.cross = CrossTally()
        model.own_sent = dict(state["own_sent"])
        return model

    # ------------------------------------------------------------- gate state

    def set_gate(self, on: bool, time: Optional[float] = None) -> None:
        """Force the cross-traffic gate on or off at ``time`` (default: now)."""
        if not self.params.has_cross_traffic:
            return
        when = self.time if time is None else time
        if on and not self.gate_on:
            self.next_cross_time = max(when, self.time)
        if not on:
            self.next_cross_time = float("inf")
        self.gate_on = on

    # -------------------------------------------------------------- data path

    def send_own(self, seq: int, size_bits: float, time: float) -> None:
        """The sender transmits packet ``seq`` at ``time`` (must not be in the past)."""
        if time < self.time - 1e-9:
            raise InferenceError(
                f"cannot send at {time:.6f}: model clock is already at {self.time:.6f}"
            )
        if time > self.time:
            self.advance(time)
        self.own_sent[seq] = time
        self._enqueue(_QueuedPacket(OWN, seq, size_bits))

    def advance(self, until: float) -> None:
        """Run the model forward to ``until``, processing arrivals and departures."""
        if until < self.time - 1e-9:
            raise InferenceError(
                f"cannot advance to {until:.6f}: model clock is already at {self.time:.6f}"
            )
        while True:
            next_completion = self._service_completion
            next_cross = self.next_cross_time if self.gate_on else float("inf")
            next_event = min(next_completion, next_cross)
            if next_event > until:
                break
            # Service completions are processed before arrivals at the same
            # instant so a departing packet frees buffer space for a
            # simultaneous arrival, matching the element-level simulator.
            if next_completion <= next_cross:
                self._complete_service(next_completion)
            else:
                self._cross_arrival(next_cross)
        self.time = max(self.time, until)

    # ---------------------------------------------------------------- scoring

    def projected_delivery(self, seq: int) -> Optional[float]:
        """Best-guess delivery time for an own packet still inside the model.

        Returns ``None`` if the packet is unknown or already resolved into a
        prediction.  The projection assumes the gate keeps its current state,
        which is the same assumption planner rollouts make.
        """
        if seq in self.predictions:
            return self.predictions[seq].time
        if self._in_service is not None and self._in_service.flow == OWN and self._in_service.seq == seq:
            return self._service_completion
        ahead_bits = 0.0
        if self._in_service is not None:
            ahead_bits += max(0.0, (self._service_completion - self.time) * self.params.link_rate_bps)
        for queued in self._queue:
            if queued.flow == OWN and queued.seq == seq:
                return self.time + (ahead_bits + queued.size_bits) / self.params.link_rate_bps
            ahead_bits += queued.size_bits
        return None

    def signature(self) -> tuple:
        """A hashable digest of the latent state, used for belief compaction."""
        queue_key = tuple((p.flow, p.seq) for p in self._queue)
        service_key = (
            (self._in_service.flow, self._in_service.seq, round(self._service_completion, 6))
            if self._in_service is not None
            else None
        )
        return (
            self.gate_on,
            round(self._queue_bits, 3),
            queue_key,
            service_key,
            round(self.next_cross_time, 6) if self.next_cross_time != float("inf") else None,
        )

    # ---------------------------------------------------------------- helpers

    def _load_initial_fill(self, start_time: float) -> None:
        remaining = self.params.initial_fill_bits
        seq = -1
        while remaining > 1e-9:
            size = min(self.params.filler_packet_bits, remaining)
            self._enqueue(_QueuedPacket(CROSS, seq, size))
            remaining -= size
            seq -= 1

    def _enqueue(self, packet: _QueuedPacket) -> None:
        if self._in_service is None:
            self._start_service(packet)
            return
        if self._queue_bits + packet.size_bits <= self.params.buffer_capacity_bits + 1e-9:
            self._queue.append(packet)
            self._queue_bits += packet.size_bits
            return
        # Tail drop.
        if packet.flow == OWN:
            self.predictions[packet.seq] = Prediction(
                seq=packet.seq, kind="dropped", time=self.time, survival=0.0
            )
        else:
            self.cross.drops.append((self.time, packet.size_bits))

    def _start_service(self, packet: _QueuedPacket) -> None:
        self._in_service = packet
        self._service_completion = self.time + packet.size_bits / self.params.link_rate_bps

    def _complete_service(self, when: float) -> None:
        packet = self._in_service
        assert packet is not None
        self.time = when
        self._in_service = None
        self._service_completion = float("inf")
        if packet.flow == OWN:
            self.predictions[packet.seq] = Prediction(
                seq=packet.seq,
                kind="delivered",
                time=when,
                survival=1.0 - self.params.loss_rate,
            )
        else:
            self.cross.deliveries.append((when, packet.size_bits))
        if self._queue:
            nxt = self._queue.popleft()
            self._queue_bits -= nxt.size_bits
            if self._queue_bits < 1e-9:
                self._queue_bits = 0.0
            self._start_service(nxt)

    def _cross_arrival(self, when: float) -> None:
        self.time = when
        self._enqueue(_QueuedPacket(CROSS, self._next_cross_seq, self.params.cross_packet_bits))
        self._next_cross_seq += 1
        self.next_cross_time = when + 1.0 / self.params.cross_rate_pps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkModel(t={self.time:.3f}, queue={self._queue_bits:g}b, "
            f"gate={'on' if self.gate_on else 'off'}, busy={self.busy})"
        )
