"""Batched forward-model operations over an :class:`EnsembleState`.

These functions reproduce :class:`~repro.inference.linkmodel.LinkModel`'s
event loop (``advance`` / ``send_own`` / gate forking) across every
hypothesis row at once.  The outer ``while`` in :func:`advance` runs once
per *event depth* — each iteration fires at most one event per row with pure
array operations — so the Python-interpreter cost is O(max events per row)
instead of O(total events across the ensemble).

Semantics match the scalar model exactly, including its tie-breaking
(service completions before arrivals at the same instant), its tail-drop
tolerance of ``1e-9`` bits, and its snap-to-zero of residual queue bits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InferenceError
from repro.inference.vectorized.state import (
    FLOW_CROSS,
    FLOW_OWN,
    PRED_DELIVERED,
    PRED_DROPPED,
    EnsembleState,
)


def advance(state: EnsembleState, until: float) -> None:
    """Run every row forward to ``until``, firing arrivals and departures."""
    if until < state.time - 1e-9:
        raise InferenceError(
            f"cannot advance to {until:.6f}: model clock is already at {state.time:.6f}"
        )
    while True:
        next_cross = np.where(state.gate_on, state.next_cross_time, np.inf)
        next_event = np.minimum(state.svc_completion, next_cross)
        active = next_event <= until
        if not active.any():
            break
        # Completions fire before arrivals at the same instant, matching the
        # scalar model (a departing packet frees space for the arrival).
        completing = active & (state.svc_completion <= next_cross)
        arriving = active & ~completing
        if completing.any():
            _complete_service(state, np.nonzero(completing)[0])
        if arriving.any():
            _cross_arrival(state, np.nonzero(arriving)[0])
    state.time = max(state.time, until)


def send_own(state: EnsembleState, seq: int, size_bits: float, time: float) -> None:
    """The sender transmits packet ``seq`` at ``time`` into every row."""
    if time < state.time - 1e-9:
        raise InferenceError(
            f"cannot send at {time:.6f}: model clock is already at {state.time:.6f}"
        )
    if time > state.time:
        advance(state, time)
    state.register_own_seq(seq, time)
    rows = np.arange(state.size)
    times = np.full(state.size, time, dtype=float)
    flows = np.full(state.size, FLOW_OWN, dtype=np.int8)
    seqs = np.full(state.size, seq, dtype=np.int64)
    sizes = np.full(state.size, size_bits, dtype=float)
    _enqueue(state, rows, times, flows, seqs, sizes)


def fork_and_advance(
    state: EnsembleState, now: float
) -> tuple[EnsembleState, np.ndarray, np.ndarray]:
    """Advance to ``now``, forking rows with a latent memoryless gate.

    Returns ``(branch_state, parent_index, branch_probability)`` with the
    branches interleaved exactly as the scalar update builds them: row ``i``'s
    "stay" branch, then (for forking rows) row ``i``'s "switch" branch.
    Branches with zero probability are dropped, as in the scalar path.
    The input ``state`` is consumed (its rows become the stay branches).
    """
    size = state.size
    interval = now - state.time
    if interval <= 1e-12:
        return state, np.arange(size), np.ones(size)

    forking = state.has_cross & ~np.isnan(state.mtts)
    fork_idx = np.nonzero(forking)[0]
    if fork_idx.size == 0:
        advance(state, now)
        return state, np.arange(size), np.ones(size)

    midpoint = state.time + interval / 2.0
    switch_state = state.select(fork_idx)
    advance(switch_state, midpoint)
    _flip_gate(switch_state, midpoint)
    advance(switch_state, now)
    advance(state, now)

    # Dwell probabilities via math.exp so each branch weight is bit-identical
    # to the scalar Hypothesis.evolve computation.
    switch_probability = np.array(
        [1.0 - math.exp(-interval / mtts) for mtts in state.mtts[fork_idx].tolist()]
    )
    stay_probability = np.ones(size)
    stay_probability[fork_idx] = 1.0 - switch_probability

    forks_before = np.cumsum(forking) - forking
    stay_position = np.arange(size) + forks_before
    switch_position = stay_position[fork_idx] + 1
    total = size + fork_idx.size
    parent = np.empty(total, dtype=np.int64)
    parent[stay_position] = np.arange(size)
    parent[switch_position] = fork_idx
    probability = np.empty(total, dtype=float)
    probability[stay_position] = stay_probability
    probability[switch_position] = switch_probability

    branch_state = state.interleave(switch_state, stay_position, switch_position)
    keep = probability > 0.0
    if not keep.all():
        keep_idx = np.nonzero(keep)[0]
        branch_state = branch_state.select(keep_idx)
        parent = parent[keep_idx]
        probability = probability[keep_idx]
    return branch_state, parent, probability


# ------------------------------------------------------------------ internals


def _flip_gate(state: EnsembleState, when: float) -> None:
    """Toggle every row's cross-traffic gate at ``when`` (all rows have one)."""
    turning_on = ~state.gate_on
    state.next_cross_time[turning_on] = max(when, state.time)
    state.next_cross_time[~turning_on] = np.inf
    state.gate_on = ~state.gate_on


def _complete_service(state: EnsembleState, rows: np.ndarray) -> None:
    """Fire the service-completion event on ``rows`` (their next event)."""
    when = state.svc_completion[rows]
    own = state.svc_flow[rows] == FLOW_OWN
    own_rows = rows[own]
    if own_rows.size:
        cols = state.lookup_columns(state.svc_seq[own_rows])
        state.pred_state[own_rows, cols] = PRED_DELIVERED
        state.pred_time[own_rows, cols] = when[own]
    # Cross-traffic deliveries carry no latent state; the vectorized backend
    # does not tally them (see EnsembleState's docstring).

    has_next = state.q_len[rows] > 0
    next_rows = rows[has_next]
    if next_rows.size:
        size = state.q_size[next_rows, 0]
        state.svc_flow[next_rows] = state.q_flow[next_rows, 0]
        state.svc_seq[next_rows] = state.q_seq[next_rows, 0]
        state.svc_size[next_rows] = size
        state.svc_completion[next_rows] = when[has_next] + size / state.link_rate[next_rows]
        # Shift the queue left one slot (fancy-indexed reads copy, so the
        # overlapping assignment is safe), then clear the vacated slot so the
        # buffers stay canonically zero-padded past q_len (the compaction
        # digest relies on this).
        state.q_flow[next_rows, :-1] = state.q_flow[next_rows, 1:]
        state.q_seq[next_rows, :-1] = state.q_seq[next_rows, 1:]
        state.q_size[next_rows, :-1] = state.q_size[next_rows, 1:]
        state.q_len[next_rows] -= 1
        tail = state.q_len[next_rows]
        state.q_flow[next_rows, tail] = 0
        state.q_seq[next_rows, tail] = 0
        state.q_size[next_rows, tail] = 0.0
        remaining = state.queue_bits[next_rows] - size
        state.queue_bits[next_rows] = np.where(remaining < 1e-9, 0.0, remaining)
    idle_rows = rows[~has_next]
    if idle_rows.size:
        state.svc_active[idle_rows] = False
        state.svc_flow[idle_rows] = -1
        state.svc_seq[idle_rows] = 0
        state.svc_size[idle_rows] = 0.0
        state.svc_completion[idle_rows] = np.inf


def _cross_arrival(state: EnsembleState, rows: np.ndarray) -> None:
    """Fire the cross-traffic arrival event on ``rows`` (their next event)."""
    when = state.next_cross_time[rows].copy()
    flows = np.full(rows.size, FLOW_CROSS, dtype=np.int8)
    seqs = state.next_cross_seq[rows].copy()
    sizes = state.cross_packet_bits[rows]
    _enqueue(state, rows, when, flows, seqs, sizes)
    state.next_cross_seq[rows] += 1
    state.next_cross_time[rows] = when + 1.0 / state.cross_rate_pps[rows]


def _enqueue(
    state: EnsembleState,
    rows: np.ndarray,
    times: np.ndarray,
    flows: np.ndarray,
    seqs: np.ndarray,
    sizes: np.ndarray,
) -> None:
    """Offer one packet per row: start service, queue it, or tail-drop it."""
    idle = ~state.svc_active[rows]
    idle_rows = rows[idle]
    if idle_rows.size:
        state.svc_active[idle_rows] = True
        state.svc_flow[idle_rows] = flows[idle]
        state.svc_seq[idle_rows] = seqs[idle]
        state.svc_size[idle_rows] = sizes[idle]
        state.svc_completion[idle_rows] = times[idle] + sizes[idle] / state.link_rate[idle_rows]

    busy = ~idle
    busy_rows = rows[busy]
    if busy_rows.size == 0:
        return
    fits = (
        state.queue_bits[busy_rows] + sizes[busy]
        <= state.buffer_cap[busy_rows] + 1e-9
    )
    queue_rows = busy_rows[fits]
    if queue_rows.size:
        state.ensure_queue_capacity(int(state.q_len[queue_rows].max()) + 1)
        slots = state.q_len[queue_rows]
        state.q_flow[queue_rows, slots] = flows[busy][fits]
        state.q_seq[queue_rows, slots] = seqs[busy][fits]
        state.q_size[queue_rows, slots] = sizes[busy][fits]
        state.q_len[queue_rows] += 1
        state.queue_bits[queue_rows] += sizes[busy][fits]

    drop_rows = busy_rows[~fits]
    if drop_rows.size:
        dropped_own = flows[busy][~fits] == FLOW_OWN
        own_drop_rows = drop_rows[dropped_own]
        if own_drop_rows.size:
            cols = state.lookup_columns(seqs[busy][~fits][dropped_own])
            state.pred_state[own_drop_rows, cols] = PRED_DROPPED
            state.pred_time[own_drop_rows, cols] = times[busy][~fits][dropped_own]
        # Cross drops are not tallied (no latent state).
