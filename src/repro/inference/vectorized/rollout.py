"""The batched rollout engine: every (action × hypothesis) lane at once.

The planner's §3.2 expected-utility step previously cloned and advanced one
scalar :class:`~repro.inference.linkmodel.LinkModel` per (candidate action ×
top-k hypothesis) at every wake-up — A×K independent Python event loops.
This module runs all of them as *one* batched, event-stepped advance over
struct-of-arrays lane buffers:

* :class:`RolloutLanes` packs the top hypotheses' latent state — queue
  contents, the packet in service, the cross-traffic gate, the next cross
  arrival — into K-row NumPy buffers, sourced either directly from
  :class:`~repro.inference.vectorized.state.EnsembleState` rows
  (:func:`pack_rows`, no scalar ``Hypothesis`` materialization) or from
  ``export_state()`` when the belief backend is scalar
  (:func:`pack_hypotheses`);
* :func:`batched_rollout` tiles those K rows across the A candidate action
  delays and advances all A×K lanes together.  Each iteration of the outer
  loop fires at most one event per lane from a shared frontier — service
  completions, cross arrivals, and the lane's hypothetical send — masked
  per lane, so the Python-interpreter cost is O(max events per lane)
  instead of O(total events across the fan-out);
* the result is a :class:`BatchedRolloutOutcome` holding every lane's
  predicted deliveries/drops as flat (time, lane) arrays, which
  ``UtilityFunction.evaluate_batch`` consumes without materializing
  per-lane Python objects.  :meth:`BatchedRolloutOutcome.lane_outcome`
  rebuilds one lane as an ordinary
  :class:`~repro.inference.hypothesis.RolloutOutcome` — the equivalence
  tests' bridge, and the fallback for custom utilities that only implement
  scalar ``evaluate``.

Semantics match ``Hypothesis.rollout`` exactly: event arithmetic is the
same float operations in the same order as the scalar ``LinkModel`` (the
PR-2 equivalence discipline), completions fire before arrivals at the same
instant, and the hypothetical send enqueues strictly after both; candidate
delays beyond the horizon advance the lane to the send time, as the scalar
path does.  The only tolerated divergence is transcendental rounding in
the utility's discount (``np.exp`` vs ``math.exp``, ≤1 ulp per term), which
is why the documented utility tolerance is ``1e-9`` relative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.api.backends import ROLLOUT_BACKENDS
from repro.errors import InferenceError
from repro.inference.hypothesis import Hypothesis, RolloutOutcome
from repro.inference.vectorized.state import (
    FLOW_CROSS,
    FLOW_OWN,
    EnsembleState,
    _pad_columns,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.planner import Decision, ExpectedUtilityPlanner
    from repro.inference.belief import BeliefState

#: Flow code for the planner's hypothetical packet inside the lane buffers.
#: Distinct from FLOW_OWN only so outcomes can report the hypothetical's
#: delivery; everywhere else it behaves exactly like own traffic.
FLOW_HYP = 2

#: Initial queue-column capacity of freshly packed lanes.
_MIN_QUEUE_CAPACITY = 8


@dataclass
class RolloutLanes:
    """K hypotheses' latent link-model state as struct-of-arrays buffers.

    One row per hypothesis, in planner top-k order.  All rows share one
    model clock (``time``), the invariant every ``BeliefState`` maintains.
    """

    time: float
    link_rate: np.ndarray
    buffer_cap: np.ndarray
    loss_rate: np.ndarray
    survival: np.ndarray
    cross_rate_pps: np.ndarray
    cross_packet_bits: np.ndarray
    gate_on: np.ndarray
    next_cross_time: np.ndarray
    svc_active: np.ndarray
    svc_flow: np.ndarray
    svc_size: np.ndarray
    svc_completion: np.ndarray
    q_flow: np.ndarray
    q_size: np.ndarray
    q_len: np.ndarray
    queue_bits: np.ndarray

    @property
    def count(self) -> int:
        """Number of hypothesis rows."""
        return int(self.link_rate.size)

    def checkpoint(self) -> dict:
        """A canonical, comparable snapshot of every lane's latent state.

        Both rollout engines pack lanes (scalar hypotheses route through
        :func:`pack_hypotheses`), so :mod:`repro.diagnostics` compares these
        snapshots to tell lane-packing drift from frontier drift.
        """
        rows = []
        for row in range(self.count):
            length = int(self.q_len[row])
            rows.append(
                {
                    "gate_on": bool(self.gate_on[row]),
                    "next_cross_time": float(self.next_cross_time[row]),
                    "in_service": (
                        (
                            int(self.svc_flow[row]),
                            float(self.svc_size[row]),
                            float(self.svc_completion[row]),
                        )
                        if bool(self.svc_active[row])
                        else None
                    ),
                    "queue": [
                        (int(self.q_flow[row, slot]), float(self.q_size[row, slot]))
                        for slot in range(length)
                    ],
                    "queue_bits": float(self.queue_bits[row]),
                }
            )
        return {"time": float(self.time), "lanes": rows}


def pack_rows(state: EnsembleState, rows: Sequence[int] | np.ndarray) -> RolloutLanes:
    """Lane buffers for ``rows`` of a vectorized ensemble — pure array slicing.

    This is the no-materialization path: the planner hands the belief's
    top-k row indices straight here, and no scalar ``Hypothesis`` objects
    are built anywhere on the decide path.
    """
    rows = np.asarray(rows, dtype=np.int64)
    width = max(_MIN_QUEUE_CAPACITY, int(state.q_len[rows].max(initial=0)) + 2)
    q_flow = np.zeros((rows.size, width), dtype=np.int8)
    q_size = np.zeros((rows.size, width), dtype=float)
    take = min(width, state.q_flow.shape[1])
    q_flow[:, :take] = state.q_flow[rows, :take]
    q_size[:, :take] = state.q_size[rows, :take]
    return RolloutLanes(
        time=state.time,
        link_rate=state.link_rate[rows].astype(float),
        buffer_cap=state.buffer_cap[rows].astype(float),
        loss_rate=state.loss_rate[rows].astype(float),
        survival=state.survival[rows].astype(float),
        cross_rate_pps=state.cross_rate_pps[rows].astype(float),
        cross_packet_bits=state.cross_packet_bits[rows].astype(float),
        gate_on=state.gate_on[rows].copy(),
        next_cross_time=state.next_cross_time[rows].astype(float),
        svc_active=state.svc_active[rows].copy(),
        svc_flow=state.svc_flow[rows].astype(np.int8),
        svc_size=state.svc_size[rows].astype(float),
        svc_completion=state.svc_completion[rows].astype(float),
        q_flow=q_flow,
        q_size=q_size,
        q_len=state.q_len[rows].astype(np.int64),
        queue_bits=state.queue_bits[rows].astype(float),
    )


def pack_hypotheses(hypotheses: Sequence[Hypothesis]) -> RolloutLanes:
    """Lane buffers for scalar hypotheses, via their ``export_state`` layout."""
    if not hypotheses:
        raise InferenceError("cannot pack zero hypotheses into rollout lanes")
    states = [hypothesis.model.export_state() for hypothesis in hypotheses]
    time = states[0]["time"]
    for state in states:
        if state["time"] != time:
            raise InferenceError(
                "the batched rollout requires every hypothesis to share one "
                "model clock (lockstep ensembles, as BeliefState maintains)"
            )
    count = len(states)
    params = [hypothesis.model.params for hypothesis in hypotheses]
    queues = [state["queue"] for state in states]
    width = max(_MIN_QUEUE_CAPACITY, max((len(q) for q in queues), default=0) + 2)
    q_flow = np.zeros((count, width), dtype=np.int8)
    q_size = np.zeros((count, width), dtype=float)
    flow_codes = {"own": FLOW_OWN, "cross": FLOW_CROSS}
    for row, queue in enumerate(queues):
        for slot, (flow, _seq, bits) in enumerate(queue):
            q_flow[row, slot] = flow_codes[flow]
            q_size[row, slot] = bits
    in_service = [state["in_service"] for state in states]
    return RolloutLanes(
        time=float(time),
        link_rate=np.array([p.link_rate_bps for p in params], dtype=float),
        buffer_cap=np.array([p.buffer_capacity_bits for p in params], dtype=float),
        loss_rate=np.array([p.loss_rate for p in params], dtype=float),
        survival=np.array([1.0 - p.loss_rate for p in params], dtype=float),
        cross_rate_pps=np.array([p.cross_rate_pps for p in params], dtype=float),
        cross_packet_bits=np.array([p.cross_packet_bits for p in params], dtype=float),
        gate_on=np.array([s["gate_on"] for s in states], dtype=bool),
        next_cross_time=np.array([s["next_cross_time"] for s in states], dtype=float),
        svc_active=np.array([entry is not None for entry in in_service], dtype=bool),
        svc_flow=np.array(
            [flow_codes[entry[0]] if entry is not None else -1 for entry in in_service],
            dtype=np.int8,
        ),
        svc_size=np.array(
            [entry[2] if entry is not None else 0.0 for entry in in_service], dtype=float
        ),
        svc_completion=np.array([s["service_completion"] for s in states], dtype=float),
        q_flow=q_flow,
        q_size=q_size,
        q_len=np.array([len(q) for q in queues], dtype=np.int64),
        queue_bits=np.array([s["queue_bits"] for s in states], dtype=float),
    )


@dataclass
class BatchedRolloutOutcome:
    """Every lane's predicted consequences, in flat struct-of-arrays form.

    Lane ``a * k + j`` is candidate action ``a`` applied to hypothesis row
    ``j`` (planner top-k order).  Event arrays are parallel ``(time, lane)``
    columns, chronological *per lane*; per-lane scalars are ``(lanes,)``
    arrays.  ``own_*`` events carry a uniform ``packet_bits`` size and the
    lane's survival probability, exactly as the scalar ``RolloutOutcome``
    reports them.
    """

    decision_time: float
    horizon: float
    packet_bits: float
    action_delays: np.ndarray  # (A,)
    k: int  # hypothesis rows per action

    own_survival: np.ndarray  # (lanes,) survival of delivered own packets
    own_time: np.ndarray
    own_lane: np.ndarray
    own_is_hyp: np.ndarray
    own_drop_time: np.ndarray
    own_drop_lane: np.ndarray
    own_drop_is_hyp: np.ndarray
    cross_time: np.ndarray
    cross_bits: np.ndarray
    cross_lane: np.ndarray
    cross_drop_time: np.ndarray
    cross_drop_bits: np.ndarray
    cross_drop_lane: np.ndarray
    final_queue_bits: np.ndarray  # (lanes,)
    final_cross_backlog_bits: np.ndarray  # (lanes,)

    @property
    def lanes(self) -> int:
        """Total number of (action × hypothesis) lanes."""
        return int(self.action_delays.size) * self.k

    def lane_outcome(self, lane: int) -> RolloutOutcome:
        """Rebuild one lane as a scalar :class:`RolloutOutcome`.

        The bridge for equivalence tests and for utilities that implement
        only the scalar ``evaluate``; event order within the lane is
        chronological, matching the scalar rollout's event-order lists.
        Per-lane event groups are indexed once (lazily), so rebuilding all
        lanes stays linear in the total event count.
        """
        if not hasattr(self, "_lane_index"):
            self._lane_index = {
                "own": _LaneIndex(self.own_lane, self.lanes),
                "own_drop": _LaneIndex(self.own_drop_lane, self.lanes),
                "cross": _LaneIndex(self.cross_lane, self.lanes),
                "cross_drop": _LaneIndex(self.cross_drop_lane, self.lanes),
            }
        index = self._lane_index
        action = int(lane) // self.k
        outcome = RolloutOutcome(
            decision_time=self.decision_time,
            action_delay=float(self.action_delays[action]),
            horizon=self.horizon,
            final_queue_bits=float(self.final_queue_bits[lane]),
            final_cross_backlog_bits=float(self.final_cross_backlog_bits[lane]),
        )
        survival = float(self.own_survival[lane])
        rows = index["own"].rows(lane)
        for time, is_hyp in zip(
            self.own_time[rows].tolist(), self.own_is_hyp[rows].tolist()
        ):
            outcome.own_deliveries.append((time, self.packet_bits, survival))
            if is_hyp:
                outcome.hypothetical_delivered = True
                outcome.hypothetical_delivery_time = time
        rows = index["own_drop"].rows(lane)
        for time in self.own_drop_time[rows].tolist():
            outcome.own_drops.append((time, self.packet_bits))
        rows = index["cross"].rows(lane)
        for time, bits in zip(
            self.cross_time[rows].tolist(), self.cross_bits[rows].tolist()
        ):
            outcome.cross_deliveries.append((time, bits, survival))
        rows = index["cross_drop"].rows(lane)
        for time, bits in zip(
            self.cross_drop_time[rows].tolist(), self.cross_drop_bits[rows].tolist()
        ):
            outcome.cross_drops.append((time, bits))
        return outcome


class _LaneIndex:
    """Per-lane index groups over one flat event stream, built in one pass.

    A stable argsort groups events by lane while preserving each lane's
    chronological order; ``rows(lane)`` is then an O(group) slice lookup.
    """

    __slots__ = ("_order", "_starts")

    def __init__(self, lane_array: np.ndarray, lanes: int) -> None:
        self._order = np.argsort(lane_array, kind="stable")
        sorted_lanes = lane_array[self._order]
        self._starts = np.searchsorted(
            sorted_lanes, np.arange(lanes + 1), side="left"
        )

    def rows(self, lane: int) -> np.ndarray:
        return self._order[self._starts[lane] : self._starts[lane + 1]]


def _concat_drops(
    chunks: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten uniform-flow ``(flow, times, lanes, sizes)`` drop chunks."""
    if not chunks:
        empty = np.empty(0)
        return empty, np.empty(0, dtype=np.int64), empty.copy(), np.empty(0, dtype=np.int8)
    times = np.concatenate([chunk[1] for chunk in chunks])
    lanes = np.concatenate([chunk[2] for chunk in chunks])
    sizes = np.concatenate([chunk[3] for chunk in chunks])
    flows = np.concatenate(
        [np.full(chunk[1].size, chunk[0], dtype=np.int8) for chunk in chunks]
    )
    return times, lanes, sizes, flows


def batched_rollout(
    lanes: RolloutLanes,
    action_delays: Sequence[float],
    horizon: float,
    packet_bits: float,
    now: float,
    send_packet: bool = True,
) -> BatchedRolloutOutcome:
    """Advance all A×K lanes through the rollout horizon in lockstep.

    Mirrors ``Hypothesis.rollout`` lane for lane: the hypothetical packet
    enters at ``now + delay`` (after every event at or before that instant),
    the gate stays frozen, and each lane runs to ``max(now + horizon,
    send_time)`` so delays beyond the horizon still observe their send.
    """
    delays = np.asarray(action_delays, dtype=float)
    if np.any(delays < 0):
        raise InferenceError("action delays must be non-negative")
    if now < lanes.time - 1e-9:
        raise InferenceError(
            f"cannot roll out at {now:.6f}: lane clock is already at {lanes.time:.6f}"
        )
    k = lanes.count
    a = int(delays.size)
    total = a * k

    # Tile the K hypothesis rows across the A candidate actions.  The
    # reciprocal inter-arrival and the drop threshold are precomputed — both
    # reuse the identical float values the scalar model derives per event.
    link_rate = np.tile(lanes.link_rate, a)
    buffer_slack = np.tile(lanes.buffer_cap, a) + 1e-9
    with np.errstate(divide="ignore"):
        cross_interval = np.tile(1.0 / lanes.cross_rate_pps, a)
    cross_packet_bits = np.tile(lanes.cross_packet_bits, a)
    svc_active = np.tile(lanes.svc_active, a)
    svc_flow = np.tile(lanes.svc_flow, a)
    svc_size = np.tile(lanes.svc_size, a)
    svc_completion = np.tile(lanes.svc_completion, a)
    # Slots are consumed monotonically (ring head, no reuse), so pre-size the
    # queue buffers for the worst-case enqueue count — initial occupancy plus
    # every possible cross arrival plus the hypothetical — and the loop never
    # has to grow them.
    max_delay = float(delays.max()) if delays.size else 0.0
    span = horizon + max_delay + (now - lanes.time)
    max_rate = float(lanes.cross_rate_pps.max()) if k else 0.0
    arrival_bound = int(min(span * max_rate + 2.0, 4096.0))
    width = int(lanes.q_len.max(initial=0)) + arrival_bound + 2
    q_flow = np.zeros((total, width), dtype=np.int8)
    q_size = np.zeros((total, width), dtype=float)
    take = min(width, lanes.q_flow.shape[1])
    q_flow[:, :take] = np.tile(lanes.q_flow[:, :take], (a, 1))
    q_size[:, :take] = np.tile(lanes.q_size[:, :take], (a, 1))
    q_len = np.tile(lanes.q_len, a)
    q_head = np.zeros(total, dtype=np.int64)
    queue_bits = np.tile(lanes.queue_bits, a)

    end = now + horizon
    send_time = np.repeat(now + delays, k)
    # A lane runs past the horizon only to observe its own send; with
    # send_packet=False the scalar oracle never advances beyond the end.
    until = np.maximum(end, send_time) if send_packet else np.full(total, end)
    # The gate is frozen during rollouts, so the "next cross arrival" frontier
    # can be masked once up front instead of re-masking every iteration; the
    # hypothetical-send frontier likewise goes to +inf once fired.
    next_cross = np.tile(
        np.where(lanes.gate_on, lanes.next_cross_time, np.inf), a
    )
    next_hyp = send_time.copy() if send_packet else np.full(total, np.inf)
    hyp_left = int(total) if send_packet else 0

    # Completions are logged untyped — (time, lane, flow, size) chunks in
    # event order — and classified own/cross once after the loop; drops are
    # uniform-flow chunks.  Per-lane chronology survives both because chunks
    # append in event order and each lane fires at most one event per chunk.
    comp_times: list[np.ndarray] = []
    comp_rows: list[np.ndarray] = []
    comp_flows: list[np.ndarray] = []
    comp_sizes: list[np.ndarray] = []
    drop_chunks: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []

    # The pre-sized width is a hard bound unless the arrival estimate was
    # clamped; only then does enqueue need its per-call growth check.
    width_is_exact = span * max_rate + 2.0 <= 4096.0

    def enqueue(rows: np.ndarray, times: np.ndarray, flow: int, sizes: np.ndarray) -> None:
        """Offer one ``flow``-typed packet per row: serve, queue, or tail-drop."""
        nonlocal q_flow, q_size
        idle = ~svc_active[rows]
        idle_rows = rows[idle]
        if idle_rows.size:
            svc_active[idle_rows] = True
            svc_flow[idle_rows] = flow
            svc_size[idle_rows] = sizes[idle]
            svc_completion[idle_rows] = times[idle] + sizes[idle] / link_rate[idle_rows]
            if idle_rows.size == rows.size:
                return
            busy = ~idle
            rows = rows[busy]
            times = times[busy]
            sizes = sizes[busy]
        fits = queue_bits[rows] + sizes <= buffer_slack[rows]
        queue_rows = rows[fits]
        if queue_rows.size != rows.size:
            drop = ~fits
            drop_chunks.append((flow, times[drop], rows[drop], sizes[drop]))
            queue_sizes = sizes[fits]
        else:
            queue_sizes = sizes
        if queue_rows.size:
            slots = q_head[queue_rows] + q_len[queue_rows]
            if not width_is_exact:
                needed = int(slots.max()) + 1
                if needed > q_flow.shape[1]:
                    grown = max(needed, q_flow.shape[1] * 2)
                    q_flow = _pad_columns(q_flow, grown)
                    q_size = _pad_columns(q_size, grown)
            q_flow[queue_rows, slots] = flow
            q_size[queue_rows, slots] = queue_sizes
            q_len[queue_rows] += 1
            queue_bits[queue_rows] += queue_sizes

    # A lane leaves ``live`` permanently once its next event passes its
    # deadline: every future event needs an earlier event to create it, so
    # inactivity is absorbing and the per-iteration work shrinks with the
    # surviving lane count.  ``until_live`` is compacted alongside ``live``
    # instead of being re-gathered each iteration.
    live = np.arange(total)
    until_live = until
    while live.size:
        svc_live = svc_completion[live]
        cross_live = next_cross[live]
        if hyp_left:
            hyp_live = next_hyp[live]
            next_event = np.minimum(np.minimum(svc_live, cross_live), hyp_live)
        else:
            next_event = np.minimum(svc_live, cross_live)
        keep = next_event <= until_live
        if not keep.all():
            live = live[keep]
            if not live.size:
                break
            until_live = until_live[keep]
            svc_live = svc_live[keep]
            cross_live = cross_live[keep]
            if hyp_left:
                hyp_live = hyp_live[keep]
        # Tie order at one instant matches the scalar rollout: service
        # completions first (a departure frees space for an arrival), cross
        # arrivals second, the hypothetical send strictly last (send_own
        # enqueues only after advancing through every event at its time).
        if hyp_left:
            completing = (svc_live <= cross_live) & (svc_live <= hyp_live)
            arriving = ~completing & (cross_live <= hyp_live)
        else:
            completing = svc_live <= cross_live
            arriving = ~completing

        rows = live[completing]
        if rows.size:
            when = svc_live[completing]
            comp_times.append(when)
            comp_rows.append(rows)
            comp_flows.append(svc_flow[rows])
            comp_sizes.append(svc_size[rows])
            has_next = q_len[rows] > 0
            next_rows = rows[has_next]
            if next_rows.size:
                head = q_head[next_rows]
                size = q_size[next_rows, head]
                svc_flow[next_rows] = q_flow[next_rows, head]
                svc_size[next_rows] = size
                svc_completion[next_rows] = when[has_next] + size / link_rate[next_rows]
                q_head[next_rows] = head + 1
                q_len[next_rows] -= 1
                remaining = queue_bits[next_rows] - size
                queue_bits[next_rows] = np.where(remaining < 1e-9, 0.0, remaining)
            if next_rows.size != rows.size:
                # Stale svc_flow/svc_size are masked by svc_active everywhere
                # they are read, so only the active flag and frontier reset.
                idle_rows = rows[~has_next]
                svc_active[idle_rows] = False
                svc_completion[idle_rows] = np.inf

        rows = live[arriving]
        if rows.size:
            when = cross_live[arriving]
            enqueue(rows, when, FLOW_CROSS, cross_packet_bits[rows])
            next_cross[rows] = when + cross_interval[rows]

        if hyp_left:
            sending = ~(completing | arriving)
            rows = live[sending]
            if rows.size:
                next_hyp[rows] = np.inf
                hyp_left -= int(rows.size)
                enqueue(
                    rows,
                    send_time[rows],
                    FLOW_HYP,
                    np.full(rows.size, packet_bits, dtype=float),
                )

    if comp_times:
        all_times = np.concatenate(comp_times)
        all_rows = np.concatenate(comp_rows)
        all_flows = np.concatenate(comp_flows)
        all_sizes = np.concatenate(comp_sizes)
    else:
        all_times = np.empty(0)
        all_rows = np.empty(0, dtype=np.int64)
        all_flows = np.empty(0, dtype=np.int8)
        all_sizes = np.empty(0)
    own = all_flows != FLOW_CROSS
    own_time = all_times[own]
    own_lane = all_rows[own]
    own_is_hyp = all_flows[own] == FLOW_HYP
    cross = ~own
    cross_time = all_times[cross]
    cross_lane = all_rows[cross]
    cross_bits = all_sizes[cross]

    own_drop_time, own_drop_lane, own_drop_sizes, own_drop_flows = _concat_drops(
        [chunk for chunk in drop_chunks if chunk[0] != FLOW_CROSS]
    )
    own_drop_is_hyp = own_drop_flows == FLOW_HYP
    cross_drop_time, cross_drop_lane, cross_drop_bits, _ = _concat_drops(
        [chunk for chunk in drop_chunks if chunk[0] == FLOW_CROSS]
    )

    # Cross-traffic outcomes count within [decision_time, end) only; own
    # predictions are unfiltered, both exactly as the scalar rollout reports.
    keep = (cross_time >= now) & (cross_time < end)
    cross_time, cross_lane, cross_bits = cross_time[keep], cross_lane[keep], cross_bits[keep]
    keep = (cross_drop_time >= now) & (cross_drop_time < end)
    cross_drop_time = cross_drop_time[keep]
    cross_drop_lane = cross_drop_lane[keep]
    cross_drop_bits = cross_drop_bits[keep]

    final_queue_bits = queue_bits + np.where(svc_active, svc_size, 0.0)
    columns = np.arange(q_flow.shape[1])
    in_queue = (columns >= q_head[:, None]) & (columns < (q_head + q_len)[:, None])
    cross_backlog = (q_size * (in_queue & (q_flow == FLOW_CROSS))).sum(axis=1)
    cross_backlog += np.where(
        svc_active & (svc_flow == FLOW_CROSS), svc_size, 0.0
    )

    return BatchedRolloutOutcome(
        decision_time=now,
        horizon=horizon,
        packet_bits=packet_bits,
        action_delays=delays,
        k=k,
        own_survival=np.tile(lanes.survival, a),
        own_time=own_time,
        own_lane=own_lane,
        own_is_hyp=own_is_hyp,
        own_drop_time=own_drop_time,
        own_drop_lane=own_drop_lane,
        own_drop_is_hyp=own_drop_is_hyp,
        cross_time=cross_time,
        cross_bits=cross_bits,
        cross_lane=cross_lane,
        cross_drop_time=cross_drop_time,
        cross_drop_bits=cross_drop_bits,
        cross_drop_lane=cross_drop_lane,
        final_queue_bits=final_queue_bits,
        final_cross_backlog_bits=cross_backlog,
    )


@ROLLOUT_BACKENDS.register("vectorized")
def decide_vectorized(
    planner: "ExpectedUtilityPlanner", belief: "BeliefState", now: float
) -> "Decision":
    """The batched rollout engine behind ``rollout_backend="vectorized"``.

    Registered on :data:`~repro.api.backends.ROLLOUT_BACKENDS`;
    ``ExpectedUtilityPlanner.decide`` dispatches here when the planner was
    constructed with the vectorized backend.  When the belief also exposes
    ``top_rows`` (the vectorized ensemble), the lanes are packed straight
    from its rows and no scalar ``Hypothesis`` is materialized anywhere on
    the decide path.
    """
    from repro.core.planner import Decision

    top_rows = getattr(belief, "top_rows", None)
    if top_rows is not None:
        rows, weights = top_rows(planner.top_k)
        state = belief.state
        summary = planner._summarize_rows(state, rows, weights)
        lanes = pack_rows(state, rows)
    else:
        top = belief.top(planner.top_k)
        summary = planner._summarize_hypotheses(top)
        lanes = pack_hypotheses([hypothesis for hypothesis, _ in top])

    actions = planner.action_grid.actions(summary.service_time)
    horizon = planner._horizon_from(summary)
    probe = planner.decision_probe
    if probe is not None:
        probe(
            "summary",
            {
                "service_time": summary.service_time,
                "horizon": horizon,
                "weights": list(summary.weights),
                "actions": [action.delay for action in actions],
            },
        )
        probe("lanes", lanes.checkpoint())
    outcome = batched_rollout(
        lanes,
        [action.delay for action in actions],
        horizon,
        planner.packet_bits,
        now,
    )
    planner.rollouts_performed += outcome.lanes
    if probe is not None:
        from repro.core.planner import rollout_outcome_digest

        probe(
            "rollout",
            {
                "lanes": [
                    rollout_outcome_digest(outcome.lane_outcome(lane))
                    for lane in range(outcome.lanes)
                ]
            },
        )

    evaluate_batch = getattr(planner.utility, "evaluate_batch", None)
    if evaluate_batch is not None:
        values = evaluate_batch(outcome).tolist()
    else:
        # Custom utility without a batch path: value each lane through
        # the scalar evaluate (still avoids per-lane model rollouts).
        values = [
            planner.utility.evaluate(outcome.lane_outcome(lane))
            for lane in range(outcome.lanes)
        ]
    if probe is not None:
        probe("utility", {"values": [float(value) for value in values]})

    count = summary.count
    total_weight = summary.total_weight
    weights = summary.weights
    expected: dict[float, float] = {}
    for index, action in enumerate(actions):
        accumulated = 0.0
        base = index * count
        for position in range(count):
            accumulated += (weights[position] / total_weight) * values[base + position]
        expected[action.delay] = accumulated

    best_action = planner._argmax_prefer_longer_delay(actions, expected)
    if probe is not None:
        probe(
            "decision",
            {"expected": dict(expected), "delay": best_action.delay, "horizon": horizon},
        )
    return Decision(
        action=best_action,
        expected_utilities=expected,
        hypotheses_evaluated=count,
        horizon=horizon,
    )
