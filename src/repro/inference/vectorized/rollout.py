"""The batched rollout engine: every (action × hypothesis) lane at once.

The planner's §3.2 expected-utility step previously cloned and advanced one
scalar :class:`~repro.inference.linkmodel.LinkModel` per (candidate action ×
top-k hypothesis) at every wake-up — A×K independent Python event loops.
This module runs all of them as *one* batched, event-stepped advance over
struct-of-arrays lane buffers:

* :class:`RolloutLanes` packs the top hypotheses' latent state — queue
  contents, the packet in service, the cross-traffic gate, the next cross
  arrival — into K-row NumPy buffers, sourced either directly from
  :class:`~repro.inference.vectorized.state.EnsembleState` rows
  (:func:`pack_rows`, no scalar ``Hypothesis`` materialization) or from
  ``export_state()`` when the belief backend is scalar
  (:func:`pack_hypotheses`);
* :func:`batched_rollout` tiles those K rows across the A candidate action
  delays and advances all A×K lanes together.  Each iteration of the outer
  loop fires at most one event per lane from a shared frontier — service
  completions, cross arrivals, and the lane's hypothetical send — masked
  per lane, so the Python-interpreter cost is O(max events per lane)
  instead of O(total events across the fan-out);
* the result is a :class:`BatchedRolloutOutcome` holding every lane's
  predicted deliveries/drops as flat (time, lane) arrays, which
  ``UtilityFunction.evaluate_batch`` consumes without materializing
  per-lane Python objects.  :meth:`BatchedRolloutOutcome.lane_outcome`
  rebuilds one lane as an ordinary
  :class:`~repro.inference.hypothesis.RolloutOutcome` — the equivalence
  tests' bridge, and the fallback for custom utilities that only implement
  scalar ``evaluate``.

Semantics match ``Hypothesis.rollout`` exactly: event arithmetic is the
same float operations in the same order as the scalar ``LinkModel`` (the
PR-2 equivalence discipline), completions fire before arrivals at the same
instant, and the hypothetical send enqueues strictly after both; candidate
delays beyond the horizon advance the lane to the send time, as the scalar
path does.  The only tolerated divergence is transcendental rounding in
the utility's discount (``np.exp`` vs ``math.exp``, ≤1 ulp per term), which
is why the documented utility tolerance is ``1e-9`` relative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.api.backends import ROLLOUT_BACKENDS
from repro.errors import InferenceError
from repro.inference.hypothesis import Hypothesis, RolloutOutcome
from repro.inference.vectorized.state import (
    FLOW_CROSS,
    FLOW_OWN,
    EnsembleState,
    _pad_columns,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.planner import Decision, ExpectedUtilityPlanner
    from repro.inference.belief import BeliefState

#: Flow code for the planner's hypothetical packet inside the lane buffers.
#: Distinct from FLOW_OWN only so outcomes can report the hypothetical's
#: delivery; everywhere else it behaves exactly like own traffic.
FLOW_HYP = 2

#: Initial queue-column capacity of freshly packed lanes.
_MIN_QUEUE_CAPACITY = 8


@dataclass
class RolloutLanes:
    """K hypotheses' latent link-model state as struct-of-arrays buffers.

    One row per hypothesis, in planner top-k order.  All rows share one
    model clock (``time``), the invariant every ``BeliefState`` maintains.
    """

    time: float
    link_rate: np.ndarray
    buffer_cap: np.ndarray
    loss_rate: np.ndarray
    survival: np.ndarray
    cross_rate_pps: np.ndarray
    cross_packet_bits: np.ndarray
    gate_on: np.ndarray
    next_cross_time: np.ndarray
    svc_active: np.ndarray
    svc_flow: np.ndarray
    svc_size: np.ndarray
    svc_completion: np.ndarray
    q_flow: np.ndarray
    q_size: np.ndarray
    q_len: np.ndarray
    queue_bits: np.ndarray

    @property
    def count(self) -> int:
        """Number of hypothesis rows."""
        return int(self.link_rate.size)

    def checkpoint(self) -> dict:
        """A canonical, comparable snapshot of every lane's latent state.

        Both rollout engines pack lanes (scalar hypotheses route through
        :func:`pack_hypotheses`), so :mod:`repro.diagnostics` compares these
        snapshots to tell lane-packing drift from frontier drift.
        """
        rows = []
        for row in range(self.count):
            length = int(self.q_len[row])
            rows.append(
                {
                    "gate_on": bool(self.gate_on[row]),
                    "next_cross_time": float(self.next_cross_time[row]),
                    "in_service": (
                        (
                            int(self.svc_flow[row]),
                            float(self.svc_size[row]),
                            float(self.svc_completion[row]),
                        )
                        if bool(self.svc_active[row])
                        else None
                    ),
                    "queue": [
                        (int(self.q_flow[row, slot]), float(self.q_size[row, slot]))
                        for slot in range(length)
                    ],
                    "queue_bits": float(self.queue_bits[row]),
                }
            )
        return {"time": float(self.time), "lanes": rows}


def pack_rows(state: EnsembleState, rows: Sequence[int] | np.ndarray) -> RolloutLanes:
    """Lane buffers for ``rows`` of a vectorized ensemble — pure array slicing.

    This is the no-materialization path: the planner hands the belief's
    top-k row indices straight here, and no scalar ``Hypothesis`` objects
    are built anywhere on the decide path.
    """
    rows = np.asarray(rows, dtype=np.int64)
    width = max(_MIN_QUEUE_CAPACITY, int(state.q_len[rows].max(initial=0)) + 2)
    q_flow = np.zeros((rows.size, width), dtype=np.int8)
    q_size = np.zeros((rows.size, width), dtype=float)
    take = min(width, state.q_flow.shape[1])
    q_flow[:, :take] = state.q_flow[rows, :take]
    q_size[:, :take] = state.q_size[rows, :take]
    return RolloutLanes(
        time=state.time,
        link_rate=state.link_rate[rows].astype(float),
        buffer_cap=state.buffer_cap[rows].astype(float),
        loss_rate=state.loss_rate[rows].astype(float),
        survival=state.survival[rows].astype(float),
        cross_rate_pps=state.cross_rate_pps[rows].astype(float),
        cross_packet_bits=state.cross_packet_bits[rows].astype(float),
        gate_on=state.gate_on[rows].copy(),
        next_cross_time=state.next_cross_time[rows].astype(float),
        svc_active=state.svc_active[rows].copy(),
        svc_flow=state.svc_flow[rows].astype(np.int8),
        svc_size=state.svc_size[rows].astype(float),
        svc_completion=state.svc_completion[rows].astype(float),
        q_flow=q_flow,
        q_size=q_size,
        q_len=state.q_len[rows].astype(np.int64),
        queue_bits=state.queue_bits[rows].astype(float),
    )


def pack_hypotheses(hypotheses: Sequence[Hypothesis]) -> RolloutLanes:
    """Lane buffers for scalar hypotheses, via their ``export_state`` layout."""
    if not hypotheses:
        raise InferenceError("cannot pack zero hypotheses into rollout lanes")
    states = [hypothesis.model.export_state() for hypothesis in hypotheses]
    time = states[0]["time"]
    for state in states:
        if state["time"] != time:
            raise InferenceError(
                "the batched rollout requires every hypothesis to share one "
                "model clock (lockstep ensembles, as BeliefState maintains)"
            )
    count = len(states)
    params = [hypothesis.model.params for hypothesis in hypotheses]
    queues = [state["queue"] for state in states]
    width = max(_MIN_QUEUE_CAPACITY, max((len(q) for q in queues), default=0) + 2)
    q_flow = np.zeros((count, width), dtype=np.int8)
    q_size = np.zeros((count, width), dtype=float)
    flow_codes = {"own": FLOW_OWN, "cross": FLOW_CROSS}
    for row, queue in enumerate(queues):
        for slot, (flow, _seq, bits) in enumerate(queue):
            q_flow[row, slot] = flow_codes[flow]
            q_size[row, slot] = bits
    in_service = [state["in_service"] for state in states]
    return RolloutLanes(
        time=float(time),
        link_rate=np.array([p.link_rate_bps for p in params], dtype=float),
        buffer_cap=np.array([p.buffer_capacity_bits for p in params], dtype=float),
        loss_rate=np.array([p.loss_rate for p in params], dtype=float),
        survival=np.array([1.0 - p.loss_rate for p in params], dtype=float),
        cross_rate_pps=np.array([p.cross_rate_pps for p in params], dtype=float),
        cross_packet_bits=np.array([p.cross_packet_bits for p in params], dtype=float),
        gate_on=np.array([s["gate_on"] for s in states], dtype=bool),
        next_cross_time=np.array([s["next_cross_time"] for s in states], dtype=float),
        svc_active=np.array([entry is not None for entry in in_service], dtype=bool),
        svc_flow=np.array(
            [flow_codes[entry[0]] if entry is not None else -1 for entry in in_service],
            dtype=np.int8,
        ),
        svc_size=np.array(
            [entry[2] if entry is not None else 0.0 for entry in in_service], dtype=float
        ),
        svc_completion=np.array([s["service_completion"] for s in states], dtype=float),
        q_flow=q_flow,
        q_size=q_size,
        q_len=np.array([len(q) for q in queues], dtype=np.int64),
        queue_bits=np.array([s["queue_bits"] for s in states], dtype=float),
    )


@dataclass
class BatchedRolloutOutcome:
    """Every lane's predicted consequences, in flat struct-of-arrays form.

    Lane ``a * k + j`` is candidate action ``a`` applied to hypothesis row
    ``j`` (planner top-k order).  Event arrays are parallel ``(time, lane)``
    columns, chronological *per lane*; per-lane scalars are ``(lanes,)``
    arrays.  ``own_*`` events carry a uniform ``packet_bits`` size and the
    lane's survival probability, exactly as the scalar ``RolloutOutcome``
    reports them.
    """

    decision_time: float
    horizon: float
    packet_bits: float
    action_delays: np.ndarray  # (A,)
    k: int  # hypothesis rows per action

    own_survival: np.ndarray  # (lanes,) survival of delivered own packets
    own_time: np.ndarray
    own_lane: np.ndarray
    own_is_hyp: np.ndarray
    own_drop_time: np.ndarray
    own_drop_lane: np.ndarray
    own_drop_is_hyp: np.ndarray
    cross_time: np.ndarray
    cross_bits: np.ndarray
    cross_lane: np.ndarray
    cross_drop_time: np.ndarray
    cross_drop_bits: np.ndarray
    cross_drop_lane: np.ndarray
    final_queue_bits: np.ndarray  # (lanes,)
    final_cross_backlog_bits: np.ndarray  # (lanes,)

    @property
    def lanes(self) -> int:
        """Total number of (action × hypothesis) lanes."""
        return int(self.action_delays.size) * self.k

    def lane_outcome(self, lane: int) -> RolloutOutcome:
        """Rebuild one lane as a scalar :class:`RolloutOutcome`.

        The bridge for equivalence tests and for utilities that implement
        only the scalar ``evaluate``; event order within the lane is
        chronological, matching the scalar rollout's event-order lists.
        Per-lane event groups are indexed once (lazily), so rebuilding all
        lanes stays linear in the total event count.
        """
        if not hasattr(self, "_lane_index"):
            self._lane_index = {
                "own": _LaneIndex(self.own_lane, self.lanes),
                "own_drop": _LaneIndex(self.own_drop_lane, self.lanes),
                "cross": _LaneIndex(self.cross_lane, self.lanes),
                "cross_drop": _LaneIndex(self.cross_drop_lane, self.lanes),
            }
        index = self._lane_index
        action = int(lane) // self.k
        outcome = RolloutOutcome(
            decision_time=self.decision_time,
            action_delay=float(self.action_delays[action]),
            horizon=self.horizon,
            final_queue_bits=float(self.final_queue_bits[lane]),
            final_cross_backlog_bits=float(self.final_cross_backlog_bits[lane]),
        )
        survival = float(self.own_survival[lane])
        rows = index["own"].rows(lane)
        for time, is_hyp in zip(
            self.own_time[rows].tolist(), self.own_is_hyp[rows].tolist()
        ):
            outcome.own_deliveries.append((time, self.packet_bits, survival))
            if is_hyp:
                outcome.hypothetical_delivered = True
                outcome.hypothetical_delivery_time = time
        rows = index["own_drop"].rows(lane)
        for time in self.own_drop_time[rows].tolist():
            outcome.own_drops.append((time, self.packet_bits))
        rows = index["cross"].rows(lane)
        for time, bits in zip(
            self.cross_time[rows].tolist(), self.cross_bits[rows].tolist()
        ):
            outcome.cross_deliveries.append((time, bits, survival))
        rows = index["cross_drop"].rows(lane)
        for time, bits in zip(
            self.cross_drop_time[rows].tolist(), self.cross_drop_bits[rows].tolist()
        ):
            outcome.cross_drops.append((time, bits))
        return outcome


class _LaneIndex:
    """Per-lane index groups over one flat event stream, built in one pass.

    A stable argsort groups events by lane while preserving each lane's
    chronological order; ``rows(lane)`` is then an O(group) slice lookup.
    """

    __slots__ = ("_order", "_starts")

    def __init__(self, lane_array: np.ndarray, lanes: int) -> None:
        self._order = np.argsort(lane_array, kind="stable")
        sorted_lanes = lane_array[self._order]
        self._starts = np.searchsorted(
            sorted_lanes, np.arange(lanes + 1), side="left"
        )

    def rows(self, lane: int) -> np.ndarray:
        return self._order[self._starts[lane] : self._starts[lane + 1]]


def _concat_drops(
    chunks: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten uniform-flow ``(flow, times, lanes, sizes)`` drop chunks."""
    if not chunks:
        empty = np.empty(0)
        return empty, np.empty(0, dtype=np.int64), empty.copy(), np.empty(0, dtype=np.int8)
    times = np.concatenate([chunk[1] for chunk in chunks])
    lanes = np.concatenate([chunk[2] for chunk in chunks])
    sizes = np.concatenate([chunk[3] for chunk in chunks])
    flows = np.concatenate(
        [np.full(chunk[1].size, chunk[0], dtype=np.int8) for chunk in chunks]
    )
    return times, lanes, sizes, flows


def _run_frontier(
    *,
    link_rate: np.ndarray,
    buffer_slack: np.ndarray,
    cross_interval: np.ndarray,
    cross_packet_bits: np.ndarray,
    svc_active: np.ndarray,
    svc_flow: np.ndarray,
    svc_size: np.ndarray,
    svc_completion: np.ndarray,
    q_flow: np.ndarray,
    q_size: np.ndarray,
    q_len: np.ndarray,
    queue_bits: np.ndarray,
    send_time: np.ndarray,
    until: np.ndarray,
    next_cross: np.ndarray,
    next_hyp: np.ndarray,
    hyp_left: int,
    packet_bits_lane: np.ndarray,
    width_is_exact: bool,
) -> dict:
    """The masked event-frontier core shared by every rollout entry point.

    Mutates the per-lane buffers in place and returns the raw event log plus
    the final lane state.  Every operation here is per-lane elementwise (no
    cross-lane reduction), so a lane's event sequence — values and order —
    depends only on that lane's own inputs.  That independence is what makes
    :func:`batched_rollout_blocks` byte-identical per block: lane L fires
    its i-th event on iteration i whether it shares the buffers with one
    sender's fan-out or with sixty-four senders'.
    """
    total = int(link_rate.size)
    q_head = np.zeros(total, dtype=np.int64)

    # Completions are logged untyped — (time, lane, flow, size) chunks in
    # event order — and classified own/cross once after the loop; drops are
    # uniform-flow chunks.  Per-lane chronology survives both because chunks
    # append in event order and each lane fires at most one event per chunk.
    comp_times: list[np.ndarray] = []
    comp_rows: list[np.ndarray] = []
    comp_flows: list[np.ndarray] = []
    comp_sizes: list[np.ndarray] = []
    drop_chunks: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []

    def enqueue(rows: np.ndarray, times: np.ndarray, flow: int, sizes: np.ndarray) -> None:
        """Offer one ``flow``-typed packet per row: serve, queue, or tail-drop."""
        nonlocal q_flow, q_size
        idle = ~svc_active[rows]
        idle_rows = rows[idle]
        if idle_rows.size:
            svc_active[idle_rows] = True
            svc_flow[idle_rows] = flow
            svc_size[idle_rows] = sizes[idle]
            svc_completion[idle_rows] = times[idle] + sizes[idle] / link_rate[idle_rows]
            if idle_rows.size == rows.size:
                return
            busy = ~idle
            rows = rows[busy]
            times = times[busy]
            sizes = sizes[busy]
        fits = queue_bits[rows] + sizes <= buffer_slack[rows]
        queue_rows = rows[fits]
        if queue_rows.size != rows.size:
            drop = ~fits
            drop_chunks.append((flow, times[drop], rows[drop], sizes[drop]))
            queue_sizes = sizes[fits]
        else:
            queue_sizes = sizes
        if queue_rows.size:
            slots = q_head[queue_rows] + q_len[queue_rows]
            if not width_is_exact:
                needed = int(slots.max()) + 1
                if needed > q_flow.shape[1]:
                    grown = max(needed, q_flow.shape[1] * 2)
                    q_flow = _pad_columns(q_flow, grown)
                    q_size = _pad_columns(q_size, grown)
            q_flow[queue_rows, slots] = flow
            q_size[queue_rows, slots] = queue_sizes
            q_len[queue_rows] += 1
            queue_bits[queue_rows] += queue_sizes

    # A lane leaves ``live`` permanently once its next event passes its
    # deadline: every future event needs an earlier event to create it, so
    # inactivity is absorbing and the per-iteration work shrinks with the
    # surviving lane count.  ``until_live`` is compacted alongside ``live``
    # instead of being re-gathered each iteration.
    live = np.arange(total)
    until_live = until
    while live.size:
        svc_live = svc_completion[live]
        cross_live = next_cross[live]
        if hyp_left:
            hyp_live = next_hyp[live]
            next_event = np.minimum(np.minimum(svc_live, cross_live), hyp_live)
        else:
            next_event = np.minimum(svc_live, cross_live)
        keep = next_event <= until_live
        if not keep.all():
            live = live[keep]
            if not live.size:
                break
            until_live = until_live[keep]
            svc_live = svc_live[keep]
            cross_live = cross_live[keep]
            if hyp_left:
                hyp_live = hyp_live[keep]
        # Tie order at one instant matches the scalar rollout: service
        # completions first (a departure frees space for an arrival), cross
        # arrivals second, the hypothetical send strictly last (send_own
        # enqueues only after advancing through every event at its time).
        if hyp_left:
            completing = (svc_live <= cross_live) & (svc_live <= hyp_live)
            arriving = ~completing & (cross_live <= hyp_live)
        else:
            completing = svc_live <= cross_live
            arriving = ~completing

        rows = live[completing]
        if rows.size:
            when = svc_live[completing]
            comp_times.append(when)
            comp_rows.append(rows)
            comp_flows.append(svc_flow[rows])
            comp_sizes.append(svc_size[rows])
            has_next = q_len[rows] > 0
            next_rows = rows[has_next]
            if next_rows.size:
                head = q_head[next_rows]
                size = q_size[next_rows, head]
                svc_flow[next_rows] = q_flow[next_rows, head]
                svc_size[next_rows] = size
                svc_completion[next_rows] = when[has_next] + size / link_rate[next_rows]
                q_head[next_rows] = head + 1
                q_len[next_rows] -= 1
                remaining = queue_bits[next_rows] - size
                queue_bits[next_rows] = np.where(remaining < 1e-9, 0.0, remaining)
            if next_rows.size != rows.size:
                # Stale svc_flow/svc_size are masked by svc_active everywhere
                # they are read, so only the active flag and frontier reset.
                idle_rows = rows[~has_next]
                svc_active[idle_rows] = False
                svc_completion[idle_rows] = np.inf

        rows = live[arriving]
        if rows.size:
            when = cross_live[arriving]
            enqueue(rows, when, FLOW_CROSS, cross_packet_bits[rows])
            next_cross[rows] = when + cross_interval[rows]

        if hyp_left:
            sending = ~(completing | arriving)
            rows = live[sending]
            if rows.size:
                next_hyp[rows] = np.inf
                hyp_left -= int(rows.size)
                enqueue(rows, send_time[rows], FLOW_HYP, packet_bits_lane[rows])

    if comp_times:
        all_times = np.concatenate(comp_times)
        all_rows = np.concatenate(comp_rows)
        all_flows = np.concatenate(comp_flows)
        all_sizes = np.concatenate(comp_sizes)
    else:
        all_times = np.empty(0)
        all_rows = np.empty(0, dtype=np.int64)
        all_flows = np.empty(0, dtype=np.int8)
        all_sizes = np.empty(0)
    return {
        "times": all_times,
        "rows": all_rows,
        "flows": all_flows,
        "sizes": all_sizes,
        "drop_chunks": drop_chunks,
        "q_flow": q_flow,
        "q_size": q_size,
        "q_head": q_head,
        "q_len": q_len,
        "queue_bits": queue_bits,
        "svc_active": svc_active,
        "svc_flow": svc_flow,
        "svc_size": svc_size,
    }


def _drain_runs(
    run_rows: np.ndarray,
    run_start: np.ndarray,
    *,
    link_rate: np.ndarray,
    svc_active: np.ndarray,
    svc_flow: np.ndarray,
    svc_size: np.ndarray,
    svc_completion: np.ndarray,
    q_flow: np.ndarray,
    q_size: np.ndarray,
    q_head: np.ndarray,
    q_len: np.ndarray,
    queue_bits: np.ndarray,
    until: np.ndarray,
    next_cross: np.ndarray,
    next_hyp: np.ndarray,
    hyp_left: int,
    comp_times: list[np.ndarray],
    comp_rows: list[np.ndarray],
    comp_flows: list[np.ndarray],
    comp_sizes: list[np.ndarray],
) -> None:
    """Finish each lane's back-to-back departure run in one vectorized slab.

    ``run_rows`` are lanes whose just-loaded packet (completing at
    ``run_start``, event already emitted) *drained* — its completion beats
    the lane's next cross arrival, hypothetical send, and deadline.  The
    lockstep loop would now fire one masked iteration per remaining queued
    packet; this helper replays that entire run at once: a prefix-sum over
    the queued transmission times yields every completion in the run, a
    single comparison against the lane's drain limit finds where the run
    stops, and the queue/service state jumps straight to the post-run
    values.

    Bit-identity with the one-packet-at-a-time loop is preserved because
    ``np.add.accumulate`` is a strict left-to-right accumulation: the
    completion chain ``c_{j+1} = c_j + size_j / rate`` and the backlog
    chain ``(queue_bits - s_1) - s_2 …`` associate exactly as the scalar
    steps do (IEEE ``a - b`` ≡ ``a + (-b)``), and the backlog's ``< 1e-9``
    floor commutes with skipping intermediate steps — the chain is
    monotone decreasing, and once the scalar loop floors to ``0.0`` every
    later step re-floors to ``0.0``.
    """
    depth = q_len[run_rows]
    width = int(depth.max()) if depth.size else 0
    if width == 0:
        # Every run emptied its queue on the packet just emitted.
        svc_active[run_rows] = False
        svc_completion[run_rows] = np.inf
        return
    offsets = np.arange(width)
    valid = offsets[None, :] < depth[:, None]
    cols = np.where(valid, q_head[run_rows][:, None] + offsets[None, :], 0)
    row_col = run_rows[:, None]
    sizes_slab = q_size[row_col, cols]
    flows_slab = q_flow[row_col, cols]
    # chain[:, j] after accumulation is the completion time of the j-th
    # queued packet; column 0 seeds the strict left-to-right accumulation
    # with the just-emitted completion, matching the scalar chain's
    # association exactly.
    chain = np.empty((run_rows.size, width + 1))
    chain[:, 0] = run_start
    np.divide(sizes_slab, link_rate[run_rows][:, None], out=chain[:, 1:])
    np.add.accumulate(chain, axis=1, out=chain)
    completions = chain[:, 1:]
    limit = np.minimum(next_cross[run_rows], until[run_rows])
    if hyp_left:
        limit = np.minimum(limit, next_hyp[run_rows])
    fired = valid & (completions <= limit[:, None])
    drained = fired.sum(axis=1)
    if drained.any():
        comp_times.append(completions[fired])
        comp_rows.append(np.repeat(run_rows, drained))
        comp_flows.append(flows_slab[fired])
        comp_sizes.append(sizes_slab[fired])
    exhausted = drained >= depth
    # Lanes that drained their whole queue loaded (and emitted) all of it;
    # the rest additionally loaded the first packet that did not drain,
    # which stays in service exactly as the scalar loop leaves it.
    loads = np.where(exhausted, depth, drained + 1)
    backlog = np.empty((run_rows.size, width + 1))
    backlog[:, 0] = queue_bits[run_rows]
    np.negative(sizes_slab, out=backlog[:, 1:])
    np.add.accumulate(backlog, axis=1, out=backlog)
    lanes = np.arange(run_rows.size)
    final_backlog = backlog[lanes, loads]
    queue_bits[run_rows] = np.where(final_backlog < 1e-9, 0.0, final_backlog)
    q_head[run_rows] += loads
    q_len[run_rows] -= loads
    if exhausted.any():
        done = run_rows[exhausted]
        svc_active[done] = False
        svc_completion[done] = np.inf
    serving = ~exhausted
    if serving.any():
        serving_rows = run_rows[serving]
        pick = drained[serving]
        slab = lanes[serving]
        svc_flow[serving_rows] = flows_slab[slab, pick]
        svc_size[serving_rows] = sizes_slab[slab, pick]
        svc_completion[serving_rows] = completions[slab, pick]


def _run_frontier_fused(
    *,
    link_rate: np.ndarray,
    buffer_slack: np.ndarray,
    cross_interval: np.ndarray,
    cross_packet_bits: np.ndarray,
    svc_active: np.ndarray,
    svc_flow: np.ndarray,
    svc_size: np.ndarray,
    svc_completion: np.ndarray,
    q_flow: np.ndarray,
    q_size: np.ndarray,
    q_len: np.ndarray,
    queue_bits: np.ndarray,
    send_time: np.ndarray,
    until: np.ndarray,
    next_cross: np.ndarray,
    next_hyp: np.ndarray,
    hyp_left: int,
    packet_bits_lane: np.ndarray,
    width_is_exact: bool,
) -> dict:
    """The fused entry points' event frontier: compacted state, drained runs.

    Fires exactly the events :func:`_run_frontier` fires, with the identical
    per-lane arithmetic (same float operations in the same per-lane order),
    but with consecutive service completions *drained*: when a completion's
    freshly loaded packet would itself complete before the lane's next
    cross arrival, hypothetical send, and deadline, :func:`_drain_runs`
    replays the lane's whole back-to-back departure run inside the same
    outer iteration via one prefix-sum slab.  The outer iteration count
    drops from the busiest lane's *event* count to roughly its *arrival*
    count — and each outer iteration's fixed cost (the masked minima,
    gathers, and branch bookkeeping over all live lanes) is paid that much
    less often.

    Equivalence contract: a lane's event sequence (times, flows, sizes, drop
    decisions) and final state are bit-identical to the lockstep loop's, and
    each flat event stream stays chronological *per lane* — the property
    every consumer relies on (``_LaneIndex`` groups with a stable sort,
    ``evaluate_batch`` accumulates with unbuffered per-lane ``np.add.at``).
    The cross-lane interleaving of the streams may differ from the lockstep
    loop's; no consumer observes it.  Drained runs are decided purely by
    lane-local state, so a pooled block's slice of the stream still equals
    its standalone run's stream, chunk for chunk.
    """
    total = int(link_rate.size)
    q_head = np.zeros(total, dtype=np.int64)

    comp_times: list[np.ndarray] = []
    comp_rows: list[np.ndarray] = []
    comp_flows: list[np.ndarray] = []
    comp_sizes: list[np.ndarray] = []
    drop_chunks: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []

    def enqueue(rows: np.ndarray, times: np.ndarray, flow: int, sizes: np.ndarray) -> None:
        """Offer one ``flow``-typed packet per row — identical decisions and
        float arithmetic to the lockstep loop's ``enqueue``."""
        nonlocal q_flow, q_size
        idle = ~svc_active[rows]
        idle_rows = rows[idle]
        if idle_rows.size:
            svc_active[idle_rows] = True
            svc_flow[idle_rows] = flow
            svc_size[idle_rows] = sizes[idle]
            svc_completion[idle_rows] = times[idle] + sizes[idle] / link_rate[idle_rows]
            if idle_rows.size == rows.size:
                return
            busy = ~idle
            rows = rows[busy]
            times = times[busy]
            sizes = sizes[busy]
        fits = queue_bits[rows] + sizes <= buffer_slack[rows]
        queue_rows = rows[fits]
        if queue_rows.size != rows.size:
            drop = ~fits
            drop_chunks.append((flow, times[drop], rows[drop], sizes[drop]))
            queue_sizes = sizes[fits]
        else:
            queue_sizes = sizes
        if queue_rows.size:
            slots = q_head[queue_rows] + q_len[queue_rows]
            if not width_is_exact:
                needed = int(slots.max()) + 1
                if needed > q_flow.shape[1]:
                    grown = max(needed, q_flow.shape[1] * 2)
                    q_flow = _pad_columns(q_flow, grown)
                    q_size = _pad_columns(q_size, grown)
            q_flow[queue_rows, slots] = flow
            q_size[queue_rows, slots] = queue_sizes
            q_len[queue_rows] += 1
            queue_bits[queue_rows] += queue_sizes

    live = np.arange(total)
    until_live = until
    while live.size:
        svc_live = svc_completion[live]
        cross_live = next_cross[live]
        if hyp_left:
            hyp_live = next_hyp[live]
            next_event = np.minimum(np.minimum(svc_live, cross_live), hyp_live)
        else:
            next_event = np.minimum(svc_live, cross_live)
        keep = next_event <= until_live
        if not keep.all():
            live = live[keep]
            if not live.size:
                break
            until_live = until_live[keep]
            svc_live = svc_live[keep]
            cross_live = cross_live[keep]
            if hyp_left:
                hyp_live = hyp_live[keep]
        # Tie order per lane matches the lockstep loop: completions first,
        # cross arrivals second, the hypothetical send strictly last.
        if hyp_left:
            completing = (svc_live <= cross_live) & (svc_live <= hyp_live)
            arriving = ~completing & (cross_live <= hyp_live)
        else:
            completing = svc_live <= cross_live
            arriving = ~completing

        rows = live[completing]
        if rows.size:
            when = svc_live[completing]
            comp_times.append(when)
            comp_rows.append(rows)
            comp_flows.append(svc_flow[rows])
            comp_sizes.append(svc_size[rows])
            # Load the next queued packet — the lockstep loop's completion
            # branch, op for op.
            has_next = q_len[rows] > 0
            next_rows = rows[has_next]
            if next_rows.size:
                head = q_head[next_rows]
                size = q_size[next_rows, head]
                svc_flow[next_rows] = q_flow[next_rows, head]
                svc_size[next_rows] = size
                svc_completion[next_rows] = when[has_next] + size / link_rate[next_rows]
                q_head[next_rows] = head + 1
                q_len[next_rows] -= 1
                remaining = queue_bits[next_rows] - size
                queue_bits[next_rows] = np.where(remaining < 1e-9, 0.0, remaining)
            if next_rows.size != rows.size:
                idle_rows = rows[~has_next]
                svc_active[idle_rows] = False
                svc_completion[idle_rows] = np.inf
            if next_rows.size:
                # Drain: fire the reloaded packet's completion in this same
                # outer iteration whenever it still beats the lane's next
                # cross arrival, hypothetical send, and deadline — exactly
                # the events the lockstep loop would fire over its next
                # iterations, in the same per-lane order.
                new_comp = svc_completion[next_rows]
                drain = (new_comp <= next_cross[next_rows]) & (
                    new_comp <= until[next_rows]
                )
                if hyp_left:
                    drain &= new_comp <= next_hyp[next_rows]
                run_rows = next_rows[drain]
                if run_rows.size:
                    run_start = new_comp[drain]
                    comp_times.append(run_start)
                    comp_rows.append(run_rows)
                    comp_flows.append(svc_flow[run_rows])
                    comp_sizes.append(svc_size[run_rows])
                    _drain_runs(
                        run_rows,
                        run_start,
                        link_rate=link_rate,
                        svc_active=svc_active,
                        svc_flow=svc_flow,
                        svc_size=svc_size,
                        svc_completion=svc_completion,
                        q_flow=q_flow,
                        q_size=q_size,
                        q_head=q_head,
                        q_len=q_len,
                        queue_bits=queue_bits,
                        until=until,
                        next_cross=next_cross,
                        next_hyp=next_hyp,
                        hyp_left=hyp_left,
                        comp_times=comp_times,
                        comp_rows=comp_rows,
                        comp_flows=comp_flows,
                        comp_sizes=comp_sizes,
                    )

        rows = live[arriving]
        if rows.size:
            when = cross_live[arriving]
            enqueue(rows, when, FLOW_CROSS, cross_packet_bits[rows])
            next_cross[rows] = when + cross_interval[rows]

        if hyp_left:
            sending = ~(completing | arriving)
            rows = live[sending]
            if rows.size:
                next_hyp[rows] = np.inf
                hyp_left -= int(rows.size)
                enqueue(rows, send_time[rows], FLOW_HYP, packet_bits_lane[rows])

    if comp_times:
        all_times = np.concatenate(comp_times)
        all_rows = np.concatenate(comp_rows)
        all_flows = np.concatenate(comp_flows)
        all_sizes = np.concatenate(comp_sizes)
    else:
        all_times = np.empty(0)
        all_rows = np.empty(0, dtype=np.int64)
        all_flows = np.empty(0, dtype=np.int8)
        all_sizes = np.empty(0)
    return {
        "times": all_times,
        "rows": all_rows,
        "flows": all_flows,
        "sizes": all_sizes,
        "drop_chunks": drop_chunks,
        "q_flow": q_flow,
        "q_size": q_size,
        "q_head": q_head,
        "q_len": q_len,
        "queue_bits": queue_bits,
        "svc_active": svc_active,
        "svc_flow": svc_flow,
        "svc_size": svc_size,
    }


def _classify_events(raw: dict, now: float, end_lane: np.ndarray) -> dict:
    """Split the raw event log into the outcome's own/cross event streams.

    Cross-traffic outcomes count within ``[decision_time, end)`` only; own
    predictions are unfiltered, both exactly as the scalar rollout reports.
    ``end_lane`` is per lane so pooled blocks with different horizons filter
    exactly as their standalone runs would.
    """
    own = raw["flows"] != FLOW_CROSS
    own_time = raw["times"][own]
    own_lane = raw["rows"][own]
    own_is_hyp = raw["flows"][own] == FLOW_HYP
    cross = ~own
    cross_time = raw["times"][cross]
    cross_lane = raw["rows"][cross]
    cross_bits = raw["sizes"][cross]

    drop_chunks = raw["drop_chunks"]
    own_drop_time, own_drop_lane, _own_drop_sizes, own_drop_flows = _concat_drops(
        [chunk for chunk in drop_chunks if chunk[0] != FLOW_CROSS]
    )
    own_drop_is_hyp = own_drop_flows == FLOW_HYP
    cross_drop_time, cross_drop_lane, cross_drop_bits, _ = _concat_drops(
        [chunk for chunk in drop_chunks if chunk[0] == FLOW_CROSS]
    )

    keep = (cross_time >= now) & (cross_time < end_lane[cross_lane])
    cross_time, cross_lane, cross_bits = cross_time[keep], cross_lane[keep], cross_bits[keep]
    keep = (cross_drop_time >= now) & (cross_drop_time < end_lane[cross_drop_lane])
    cross_drop_time = cross_drop_time[keep]
    cross_drop_lane = cross_drop_lane[keep]
    cross_drop_bits = cross_drop_bits[keep]
    return {
        "own_time": own_time,
        "own_lane": own_lane,
        "own_is_hyp": own_is_hyp,
        "own_drop_time": own_drop_time,
        "own_drop_lane": own_drop_lane,
        "own_drop_is_hyp": own_drop_is_hyp,
        "cross_time": cross_time,
        "cross_bits": cross_bits,
        "cross_lane": cross_lane,
        "cross_drop_time": cross_drop_time,
        "cross_drop_bits": cross_drop_bits,
        "cross_drop_lane": cross_drop_lane,
    }


def _cross_backlog_pairwise(raw: dict) -> np.ndarray:
    """Final cross-queued bits per lane, summed with NumPy's pairwise sum.

    The historical reduction of :func:`batched_rollout`, kept bit-for-bit so
    the unfused vectorized backend's outputs are unchanged by the fused
    refactor.  Its rounding depends on the buffer width (the pairwise tree
    shape), which is why the fused paths use the width-independent
    :func:`_cross_backlog_sequential` instead.
    """
    q_flow, q_size = raw["q_flow"], raw["q_size"]
    q_head, q_len = raw["q_head"], raw["q_len"]
    columns = np.arange(q_flow.shape[1])
    in_queue = (columns >= q_head[:, None]) & (columns < (q_head + q_len)[:, None])
    cross_backlog = (q_size * (in_queue & (q_flow == FLOW_CROSS))).sum(axis=1)
    cross_backlog += np.where(
        raw["svc_active"] & (raw["svc_flow"] == FLOW_CROSS), raw["svc_size"], 0.0
    )
    return cross_backlog


def _cross_backlog_sequential(raw: dict) -> np.ndarray:
    """Final cross-queued bits per lane, accumulated strictly left to right.

    ``np.add.at`` over the in-queue cross cells in row-major (ascending
    column) order gives every lane the same ordered float additions no
    matter how wide the shared buffer is — so a pooled
    :func:`batched_rollout_blocks` lane and its standalone
    :func:`batched_rollout_rows` twin produce bit-identical backlogs even
    though they sat in differently sized buffers.
    """
    q_flow, q_size = raw["q_flow"], raw["q_size"]
    q_head, q_len = raw["q_head"], raw["q_len"]
    columns = np.arange(q_flow.shape[1])
    in_queue = (columns >= q_head[:, None]) & (columns < (q_head + q_len)[:, None])
    lanes_nz, cols_nz = np.nonzero(in_queue & (q_flow == FLOW_CROSS))
    cross_backlog = np.zeros(q_len.size)
    np.add.at(cross_backlog, lanes_nz, q_size[lanes_nz, cols_nz])
    cross_backlog += np.where(
        raw["svc_active"] & (raw["svc_flow"] == FLOW_CROSS), raw["svc_size"], 0.0
    )
    return cross_backlog


def batched_rollout(
    lanes: RolloutLanes,
    action_delays: Sequence[float],
    horizon: float,
    packet_bits: float,
    now: float,
    send_packet: bool = True,
) -> BatchedRolloutOutcome:
    """Advance all A×K lanes through the rollout horizon in lockstep.

    Mirrors ``Hypothesis.rollout`` lane for lane: the hypothetical packet
    enters at ``now + delay`` (after every event at or before that instant),
    the gate stays frozen, and each lane runs to ``max(now + horizon,
    send_time)`` so delays beyond the horizon still observe their send.
    """
    delays = np.asarray(action_delays, dtype=float)
    if np.any(delays < 0):
        raise InferenceError("action delays must be non-negative")
    if now < lanes.time - 1e-9:
        raise InferenceError(
            f"cannot roll out at {now:.6f}: lane clock is already at {lanes.time:.6f}"
        )
    k = lanes.count
    a = int(delays.size)
    total = a * k

    # Tile the K hypothesis rows across the A candidate actions.  The
    # reciprocal inter-arrival and the drop threshold are precomputed — both
    # reuse the identical float values the scalar model derives per event.
    link_rate = np.tile(lanes.link_rate, a)
    buffer_slack = np.tile(lanes.buffer_cap, a) + 1e-9
    with np.errstate(divide="ignore"):
        cross_interval = np.tile(1.0 / lanes.cross_rate_pps, a)
    cross_packet_bits = np.tile(lanes.cross_packet_bits, a)
    svc_active = np.tile(lanes.svc_active, a)
    svc_flow = np.tile(lanes.svc_flow, a)
    svc_size = np.tile(lanes.svc_size, a)
    svc_completion = np.tile(lanes.svc_completion, a)
    # Slots are consumed monotonically (ring head, no reuse), so pre-size the
    # queue buffers for the worst-case enqueue count — initial occupancy plus
    # every possible cross arrival plus the hypothetical — and the loop never
    # has to grow them.
    max_delay = float(delays.max()) if delays.size else 0.0
    span = horizon + max_delay + (now - lanes.time)
    max_rate = float(lanes.cross_rate_pps.max()) if k else 0.0
    arrival_bound = int(min(span * max_rate + 2.0, 4096.0))
    width = int(lanes.q_len.max(initial=0)) + arrival_bound + 2
    q_flow = np.zeros((total, width), dtype=np.int8)
    q_size = np.zeros((total, width), dtype=float)
    take = min(width, lanes.q_flow.shape[1])
    q_flow[:, :take] = np.tile(lanes.q_flow[:, :take], (a, 1))
    q_size[:, :take] = np.tile(lanes.q_size[:, :take], (a, 1))
    q_len = np.tile(lanes.q_len, a)
    queue_bits = np.tile(lanes.queue_bits, a)

    end = now + horizon
    send_time = np.repeat(now + delays, k)
    # A lane runs past the horizon only to observe its own send; with
    # send_packet=False the scalar oracle never advances beyond the end.
    until = np.maximum(end, send_time) if send_packet else np.full(total, end)
    # The gate is frozen during rollouts, so the "next cross arrival" frontier
    # can be masked once up front instead of re-masking every iteration; the
    # hypothetical-send frontier likewise goes to +inf once fired.
    next_cross = np.tile(
        np.where(lanes.gate_on, lanes.next_cross_time, np.inf), a
    )
    next_hyp = send_time.copy() if send_packet else np.full(total, np.inf)
    hyp_left = int(total) if send_packet else 0

    # The pre-sized width is a hard bound unless the arrival estimate was
    # clamped; only then does enqueue need its per-call growth check.
    width_is_exact = span * max_rate + 2.0 <= 4096.0

    raw = _run_frontier(
        link_rate=link_rate,
        buffer_slack=buffer_slack,
        cross_interval=cross_interval,
        cross_packet_bits=cross_packet_bits,
        svc_active=svc_active,
        svc_flow=svc_flow,
        svc_size=svc_size,
        svc_completion=svc_completion,
        q_flow=q_flow,
        q_size=q_size,
        q_len=q_len,
        queue_bits=queue_bits,
        send_time=send_time,
        until=until,
        next_cross=next_cross,
        next_hyp=next_hyp,
        hyp_left=hyp_left,
        packet_bits_lane=np.full(total, packet_bits, dtype=float),
        width_is_exact=width_is_exact,
    )
    events = _classify_events(raw, now, np.full(total, end))
    final_queue_bits = raw["queue_bits"] + np.where(
        raw["svc_active"], raw["svc_size"], 0.0
    )
    return BatchedRolloutOutcome(
        decision_time=now,
        horizon=horizon,
        packet_bits=packet_bits,
        action_delays=delays,
        k=k,
        own_survival=np.tile(lanes.survival, a),
        final_queue_bits=final_queue_bits,
        final_cross_backlog_bits=_cross_backlog_pairwise(raw),
        **events,
    )


def batched_rollout_rows(
    state: EnsembleState,
    rows: Sequence[int] | np.ndarray,
    action_delays: Sequence[float],
    horizon: float,
    packet_bits: float,
    now: float,
    send_packet: bool = True,
) -> BatchedRolloutOutcome:
    """The fused rollout: ensemble rows straight into the event frontier.

    Equivalent to ``batched_rollout(pack_rows(state, rows), ...)`` — same
    values in every lane slot, hence byte-identical outcomes (the tiled
    gather ``state.lane_arrays`` produces is elementwise equal to
    ``pack_rows`` + ``np.tile``) — but without materializing the
    intermediate :class:`RolloutLanes` repack.  The one intentional
    difference is the final cross-backlog reduction, which uses the
    width-independent sequential sum (see :func:`_cross_backlog_sequential`)
    so pooled and standalone fused runs agree bit for bit; under the default
    utilities the backlog never feeds a decision, and the documented 1e-9
    relative utility tolerance covers it everywhere else.
    """
    rows = np.asarray(rows, dtype=np.int64)
    delays = np.asarray(action_delays, dtype=float)
    if np.any(delays < 0):
        raise InferenceError("action delays must be non-negative")
    if now < state.time - 1e-9:
        raise InferenceError(
            f"cannot roll out at {now:.6f}: lane clock is already at {state.time:.6f}"
        )
    k = int(rows.size)
    a = int(delays.size)
    total = a * k

    max_delay = float(delays.max()) if delays.size else 0.0
    span = horizon + max_delay + (now - state.time)
    max_rate = float(state.cross_rate_pps[rows].max()) if k else 0.0
    arrival_bound = int(min(span * max_rate + 2.0, 4096.0))
    width = int(state.q_len[rows].max(initial=0)) + arrival_bound + 2
    width_is_exact = span * max_rate + 2.0 <= 4096.0

    lanes = state.lane_arrays(rows, a, width)
    with np.errstate(divide="ignore"):
        cross_interval = 1.0 / lanes["cross_rate_pps"]
    end = now + horizon
    send_time = np.repeat(now + delays, k)
    until = np.maximum(end, send_time) if send_packet else np.full(total, end)
    next_cross = np.where(lanes["gate_on"], lanes["next_cross_time"], np.inf)
    next_hyp = send_time.copy() if send_packet else np.full(total, np.inf)
    hyp_left = int(total) if send_packet else 0

    raw = _run_frontier_fused(
        link_rate=lanes["link_rate"],
        buffer_slack=lanes["buffer_cap"] + 1e-9,
        cross_interval=cross_interval,
        cross_packet_bits=lanes["cross_packet_bits"],
        svc_active=lanes["svc_active"],
        svc_flow=lanes["svc_flow"],
        svc_size=lanes["svc_size"],
        svc_completion=lanes["svc_completion"],
        q_flow=lanes["q_flow"],
        q_size=lanes["q_size"],
        q_len=lanes["q_len"],
        queue_bits=lanes["queue_bits"],
        send_time=send_time,
        until=until,
        next_cross=next_cross,
        next_hyp=next_hyp,
        hyp_left=hyp_left,
        packet_bits_lane=np.full(total, packet_bits, dtype=float),
        width_is_exact=width_is_exact,
    )
    events = _classify_events(raw, now, np.full(total, end))
    final_queue_bits = raw["queue_bits"] + np.where(
        raw["svc_active"], raw["svc_size"], 0.0
    )
    return BatchedRolloutOutcome(
        decision_time=now,
        horizon=horizon,
        packet_bits=packet_bits,
        action_delays=delays,
        k=k,
        own_survival=lanes["survival"],
        final_queue_bits=final_queue_bits,
        final_cross_backlog_bits=_cross_backlog_sequential(raw),
        **events,
    )


@dataclass
class RolloutBlock:
    """One sender's (action × hypothesis) fan-out inside a pooled rollout.

    ``batched_rollout_blocks`` concatenates blocks along the lane axis into
    one (sender × action × hypothesis) frontier.  Each block's horizon,
    action grid, and packet size are its own; the decision clock ``now`` is
    shared (pool wake-ups are batch-synchronous).
    """

    state: EnsembleState
    rows: np.ndarray
    action_delays: Sequence[float]
    horizon: float
    packet_bits: float


def batched_rollout_blocks(
    blocks: Sequence[RolloutBlock],
    now: float,
    send_packet: bool = True,
) -> list[BatchedRolloutOutcome]:
    """Roll out many senders' fan-outs as one (sender × action × hypothesis) pass.

    Returns one :class:`BatchedRolloutOutcome` per block, each byte-identical
    to what :func:`batched_rollout_rows` would return for that block alone:
    the frontier core is lane-elementwise, so pooling changes neither event
    values nor per-lane event order, and the per-block slices of the flat
    event log preserve the standalone chunk ordering (within one iteration's
    chunk, lanes ascend, and a block's lanes are contiguous).
    """
    if not blocks:
        return []
    prepared = []
    width = 0
    width_is_exact = True
    for block in blocks:
        rows = np.asarray(block.rows, dtype=np.int64)
        delays = np.asarray(block.action_delays, dtype=float)
        if np.any(delays < 0):
            raise InferenceError("action delays must be non-negative")
        if now < block.state.time - 1e-9:
            raise InferenceError(
                f"cannot roll out at {now:.6f}: lane clock is already at "
                f"{block.state.time:.6f}"
            )
        k = int(rows.size)
        a = int(delays.size)
        max_delay = float(delays.max()) if delays.size else 0.0
        span = block.horizon + max_delay + (now - block.state.time)
        max_rate = float(block.state.cross_rate_pps[rows].max()) if k else 0.0
        arrival_bound = int(min(span * max_rate + 2.0, 4096.0))
        width = max(width, int(block.state.q_len[rows].max(initial=0)) + arrival_bound + 2)
        width_is_exact = width_is_exact and span * max_rate + 2.0 <= 4096.0
        prepared.append((block, rows, delays, k, a))

    fields = (
        "link_rate",
        "buffer_cap",
        "survival",
        "cross_rate_pps",
        "cross_packet_bits",
        "gate_on",
        "next_cross_time",
        "svc_active",
        "svc_flow",
        "svc_size",
        "svc_completion",
        "q_len",
        "queue_bits",
        "q_flow",
        "q_size",
    )
    pieces: dict[str, list[np.ndarray]] = {field: [] for field in fields}
    send_parts: list[np.ndarray] = []
    until_parts: list[np.ndarray] = []
    end_parts: list[np.ndarray] = []
    bits_parts: list[np.ndarray] = []
    for block, rows, delays, k, a in prepared:
        lanes = block.state.lane_arrays(rows, a, width)
        for field in fields:
            pieces[field].append(lanes[field])
        end = now + block.horizon
        block_send = np.repeat(now + delays, k)
        send_parts.append(block_send)
        until_parts.append(
            np.maximum(end, block_send)
            if send_packet
            else np.full(block_send.size, end)
        )
        end_parts.append(np.full(block_send.size, end))
        bits_parts.append(np.full(block_send.size, block.packet_bits, dtype=float))
    merged = {field: np.concatenate(pieces[field]) for field in fields}
    send_time = np.concatenate(send_parts)
    until = np.concatenate(until_parts)
    end_lane = np.concatenate(end_parts)
    packet_bits_lane = np.concatenate(bits_parts)
    total = int(send_time.size)

    with np.errstate(divide="ignore"):
        cross_interval = 1.0 / merged["cross_rate_pps"]
    next_cross = np.where(merged["gate_on"], merged["next_cross_time"], np.inf)
    next_hyp = send_time.copy() if send_packet else np.full(total, np.inf)
    hyp_left = total if send_packet else 0

    raw = _run_frontier_fused(
        link_rate=merged["link_rate"],
        buffer_slack=merged["buffer_cap"] + 1e-9,
        cross_interval=cross_interval,
        cross_packet_bits=merged["cross_packet_bits"],
        svc_active=merged["svc_active"],
        svc_flow=merged["svc_flow"],
        svc_size=merged["svc_size"],
        svc_completion=merged["svc_completion"],
        q_flow=merged["q_flow"],
        q_size=merged["q_size"],
        q_len=merged["q_len"],
        queue_bits=merged["queue_bits"],
        send_time=send_time,
        until=until,
        next_cross=next_cross,
        next_hyp=next_hyp,
        hyp_left=hyp_left,
        packet_bits_lane=packet_bits_lane,
        width_is_exact=width_is_exact,
    )
    events = _classify_events(raw, now, end_lane)
    final_queue_bits = raw["queue_bits"] + np.where(
        raw["svc_active"], raw["svc_size"], 0.0
    )
    cross_backlog = _cross_backlog_sequential(raw)

    outcomes: list[BatchedRolloutOutcome] = []
    offset = 0
    for block, rows, delays, k, a in prepared:
        stop = offset + a * k

        def split(time: np.ndarray, lane: np.ndarray, *extras: np.ndarray):
            sel = (lane >= offset) & (lane < stop)
            return (time[sel], lane[sel] - offset) + tuple(x[sel] for x in extras)

        own_time, own_lane, own_is_hyp = split(
            events["own_time"], events["own_lane"], events["own_is_hyp"]
        )
        own_drop_time, own_drop_lane, own_drop_is_hyp = split(
            events["own_drop_time"], events["own_drop_lane"], events["own_drop_is_hyp"]
        )
        cross_time, cross_lane, cross_bits = split(
            events["cross_time"], events["cross_lane"], events["cross_bits"]
        )
        cross_drop_time, cross_drop_lane, cross_drop_bits = split(
            events["cross_drop_time"],
            events["cross_drop_lane"],
            events["cross_drop_bits"],
        )
        outcomes.append(
            BatchedRolloutOutcome(
                decision_time=now,
                horizon=block.horizon,
                packet_bits=block.packet_bits,
                action_delays=delays,
                k=k,
                own_survival=merged["survival"][offset:stop],
                own_time=own_time,
                own_lane=own_lane,
                own_is_hyp=own_is_hyp,
                own_drop_time=own_drop_time,
                own_drop_lane=own_drop_lane,
                own_drop_is_hyp=own_drop_is_hyp,
                cross_time=cross_time,
                cross_bits=cross_bits,
                cross_lane=cross_lane,
                cross_drop_time=cross_drop_time,
                cross_drop_bits=cross_drop_bits,
                cross_drop_lane=cross_drop_lane,
                final_queue_bits=final_queue_bits[offset:stop],
                final_cross_backlog_bits=cross_backlog[offset:stop],
            )
        )
        offset = stop
    return outcomes


def _finish_decide(planner, summary, actions, horizon, outcome, probe) -> "Decision":
    """Value a rollout fan-out and pick the action — the shared decide tail.

    Used by both the unfused ``decide_vectorized`` and the fused backend's
    ``decide_fused`` (and, per block, by the ``BatchedSenderPool``), so the
    utility arithmetic, probability-weighted aggregation loop, and tie
    handling are the identical float operations on every path.
    """
    from repro.core.planner import Decision

    planner.rollouts_performed += outcome.lanes
    if probe is not None:
        from repro.core.planner import rollout_outcome_digest

        probe(
            "rollout",
            {
                "lanes": [
                    rollout_outcome_digest(outcome.lane_outcome(lane))
                    for lane in range(outcome.lanes)
                ]
            },
        )

    evaluate_batch = getattr(planner.utility, "evaluate_batch", None)
    if evaluate_batch is not None:
        values = evaluate_batch(outcome).tolist()
    else:
        # Custom utility without a batch path: value each lane through
        # the scalar evaluate (still avoids per-lane model rollouts).
        values = [
            planner.utility.evaluate(outcome.lane_outcome(lane))
            for lane in range(outcome.lanes)
        ]
    if probe is not None:
        probe("utility", {"values": [float(value) for value in values]})

    count = summary.count
    total_weight = summary.total_weight
    weights = summary.weights
    expected: dict[float, float] = {}
    for index, action in enumerate(actions):
        accumulated = 0.0
        base = index * count
        for position in range(count):
            accumulated += (weights[position] / total_weight) * values[base + position]
        expected[action.delay] = accumulated

    best_action = planner._argmax_prefer_longer_delay(actions, expected)
    if probe is not None:
        probe(
            "decision",
            {"expected": dict(expected), "delay": best_action.delay, "horizon": horizon},
        )
    return Decision(
        action=best_action,
        expected_utilities=expected,
        hypotheses_evaluated=count,
        horizon=horizon,
    )


@ROLLOUT_BACKENDS.register("vectorized")
def decide_vectorized(
    planner: "ExpectedUtilityPlanner", belief: "BeliefState", now: float
) -> "Decision":
    """The batched rollout engine behind ``rollout_backend="vectorized"``.

    Registered on :data:`~repro.api.backends.ROLLOUT_BACKENDS`;
    ``ExpectedUtilityPlanner.decide`` dispatches here when the planner was
    constructed with the vectorized backend.  When the belief also exposes
    ``top_rows`` (the vectorized ensemble), the lanes are packed straight
    from its rows and no scalar ``Hypothesis`` is materialized anywhere on
    the decide path.
    """
    top_rows = getattr(belief, "top_rows", None)
    if top_rows is not None:
        rows, weights = top_rows(planner.top_k)
        state = belief.state
        summary = planner._summarize_rows(state, rows, weights)
        lanes = pack_rows(state, rows)
    else:
        top = belief.top(planner.top_k)
        summary = planner._summarize_hypotheses(top)
        lanes = pack_hypotheses([hypothesis for hypothesis, _ in top])

    actions = planner.action_grid.actions(summary.service_time)
    horizon = planner._horizon_from(summary)
    probe = planner.decision_probe
    if probe is not None:
        probe(
            "summary",
            {
                "service_time": summary.service_time,
                "horizon": horizon,
                "weights": list(summary.weights),
                "actions": [action.delay for action in actions],
            },
        )
        probe("lanes", lanes.checkpoint())
    outcome = batched_rollout(
        lanes,
        [action.delay for action in actions],
        horizon,
        planner.packet_bits,
        now,
    )
    return _finish_decide(planner, summary, actions, horizon, outcome, probe)
