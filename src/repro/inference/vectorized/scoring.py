"""Batched log-likelihood scoring over an :class:`EnsembleState`.

Replicates :meth:`repro.inference.hypothesis.Hypothesis.score` row-wise,
including its side effects and short-circuits:

* acknowledgements are processed in arrival order; a row that is rejected
  (contradicted charged-loss, predicted drop, unexplainable sequence number,
  kernel hard reject) stops accumulating *and stops mutating its
  bookkeeping*, exactly like the scalar early ``return -inf``;
* a zero survival probability contributes ``-inf`` to the log-likelihood but
  does **not** stop bookkeeping (the scalar path keeps iterating);
* packets the model predicts as delivered but never acknowledged are charged
  to last-mile loss — rejecting zero-loss rows outright — and marked
  resolved/lost on the surviving rows.

Per-acknowledgement kernel evaluation uses the kernels' own
``log_weight_batch`` when available (see :mod:`repro.inference.likelihood`);
loss terms reuse the log constants precomputed on the state so every
contribution is bit-identical to the scalar arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Set

import numpy as np

from repro.inference.likelihood import LikelihoodKernel, log_weight_batch
from repro.inference.observation import AckObservation
from repro.inference.vectorized.state import (
    FLOW_OWN,
    PRED_DELIVERED,
    PRED_DROPPED,
    PRED_NONE,
    EnsembleState,
)


def score_and_bookkeep(
    state: EnsembleState,
    acks: Iterable[AckObservation],
    now: float,
    kernel: LikelihoodKernel,
    acked_seqs: Set[int],
    missing_grace: float = 0.0,
) -> np.ndarray:
    """Per-row log-likelihood of ``acks``; mutates resolved/lost bookkeeping."""
    size = state.size
    log_likelihood = np.zeros(size)
    rejected = np.zeros(size, dtype=bool)

    for ack in acks:
        live = ~rejected
        if not live.any():
            break
        col = state.column_of(ack.seq)
        if col is None:
            # No row has ever seen this sequence number: every live row is
            # contradicted (the scalar projected_delivery returns None).
            rejected |= live
            continue
        # A packet already charged as lost contradicts the row outright.
        rejected |= live & state.lost[:, col]
        live = ~rejected

        pred = state.pred_state[:, col]
        rejected |= live & (pred == PRED_DROPPED)
        live = ~rejected

        delivered = live & (pred == PRED_DELIVERED)
        unresolved = live & (pred == PRED_NONE)
        projected, found = _projected_delivery(state, ack.seq, col, unresolved)
        rejected |= unresolved & ~found
        live = ~rejected

        scoring = (delivered | (unresolved & found)) & live
        error = np.where(delivered, state.pred_time[:, col], projected) - ack.received_at
        contribution = log_weight_batch(kernel, error)
        rejected |= scoring & (contribution == -np.inf)
        scoring &= ~rejected

        log_likelihood[scoring] += contribution[scoring]
        # Survival factor: only when survival < 1; survival == 0 adds -inf
        # without rejecting the row (bookkeeping continues, as in the scalar
        # path).
        lossy = scoring & (state.survival < 1.0)
        log_likelihood[lossy] += state.log_survival[lossy]
        state.resolved[scoring, col] = True

    live = ~rejected
    if state.n_own and live.any():
        _charge_missing_packets(state, now, acked_seqs, missing_grace, live, rejected, log_likelihood)

    log_likelihood[rejected] = -np.inf
    return log_likelihood


def _projected_delivery(
    state: EnsembleState, seq: int, col: int, mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Best-guess delivery times for rows still holding ``seq`` in the model.

    Mirrors ``LinkModel.projected_delivery``: the packet is either in
    service (projected at its completion) or queued (service remainder plus
    the bits ahead of it), else the projection fails (``found`` False).
    """
    size = state.size
    projected = np.zeros(size)
    in_service = (
        mask
        & state.svc_active
        & (state.svc_flow == FLOW_OWN)
        & (state.svc_seq == seq)
    )
    projected[in_service] = state.svc_completion[in_service]

    searching = mask & ~in_service
    columns = np.arange(state.q_flow.shape[1])
    occupied = columns[None, :] < state.q_len[:, None]
    matches = occupied & (state.q_flow == FLOW_OWN) & (state.q_seq == seq)
    in_queue = searching & matches.any(axis=1)
    if in_queue.any():
        position = np.argmax(matches, axis=1)
        inclusive = np.cumsum(state.q_size, axis=1)
        row_index = np.nonzero(in_queue)[0]
        slot = position[row_index]
        own_size = state.q_size[row_index, slot]
        ahead_in_queue = inclusive[row_index, slot] - own_size
        service_remaining = np.maximum(
            0.0,
            (state.svc_completion[row_index] - state.time) * state.link_rate[row_index],
        )
        service_remaining[~state.svc_active[row_index]] = 0.0
        ahead = service_remaining + ahead_in_queue
        projected[row_index] = state.time + (ahead + own_size) / state.link_rate[row_index]

    return projected, in_service | in_queue


def _charge_missing_packets(
    state: EnsembleState,
    now: float,
    acked_seqs: Set[int],
    missing_grace: float,
    live: np.ndarray,
    rejected: np.ndarray,
    log_likelihood: np.ndarray,
) -> None:
    """Charge unacknowledged-but-delivered packets to stochastic loss."""
    n = state.n_own
    acked_columns = np.array(
        [int(seq) in acked_seqs for seq in state.own_seqs[:n].tolist()], dtype=bool
    )
    missing = (
        (state.pred_state[:, :n] == PRED_DELIVERED)
        & ~state.resolved[:, :n]
        & ~acked_columns[None, :]
        & (state.pred_time[:, :n] <= now - missing_grace)
        & live[:, None]
    )
    counts = missing.sum(axis=1)
    any_missing = counts > 0
    zero_loss = live & any_missing & (state.loss_rate <= 0.0)
    rejected |= zero_loss
    charged = live & any_missing & (state.loss_rate > 0.0)
    if charged.any():
        # Repeated addition (rather than count * log_loss) keeps the float
        # accumulation identical to the scalar per-packet loop.
        most = int(counts[charged].max())
        for already in range(most):
            step = charged & (counts > already)
            log_likelihood[step] += state.log_loss[step]
        charged_missing = missing & charged[:, None]
        state.resolved[:, :n] |= charged_missing
        state.lost[:, :n] |= charged_missing
