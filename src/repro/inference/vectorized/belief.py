"""The array-backed belief state.

:class:`VectorizedBeliefState` is a drop-in replacement for
:class:`~repro.inference.belief.BeliefState` that stores the whole ensemble
in one :class:`~repro.inference.vectorized.state.EnsembleState` and runs
every step of the sequential Bayesian update — forward simulation, gate
forking, scoring, compaction, pruning, renormalization — as batched array
operations over struct-of-arrays buffers.

Equivalence contract with the scalar backend (exercised by
``tests/test_inference_vectorized.py``): the two backends apply the same
operations in the same order, and every arithmetic step that feeds a weight
uses either pure IEEE arithmetic (bit-identical between NumPy and Python
floats) or the same ``math``-module transcendental, so posteriors normally
match to the last bit.  The documented tolerance is ``1e-9`` relative — the
only divergences in practice are one-ulp differences in transcendental
calls on exotic platforms.

Scalar :class:`~repro.inference.hypothesis.Hypothesis` objects are
*materialized on demand* — ``top(k)`` / ``map_estimate`` rebuild only the
rows the planner asks for, so the planner's rollout path is unchanged while
the per-wake-up belief update no longer touches per-hypothesis Python
objects at all.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.api.backends import BELIEF_BACKENDS
from repro.errors import DegenerateBeliefError, InferenceError
from repro.inference.belief import BeliefState
from repro.inference.hypothesis import Hypothesis
from repro.inference.likelihood import LikelihoodKernel
from repro.inference.observation import AckObservation
from repro.inference.vectorized import engine
from repro.inference.vectorized.scoring import score_and_bookkeep
from repro.inference.vectorized.state import EnsembleState


class VectorizedBeliefState(BeliefState):
    """A :class:`BeliefState` whose ensemble lives in NumPy buffers."""

    backend = "vectorized"

    def __init__(
        self,
        hypotheses: Sequence[Hypothesis],
        weights: Optional[Sequence[float]] = None,
        kernel: Optional[LikelihoodKernel] = None,
        max_hypotheses: int = 512,
        prune_fraction: float = 1e-6,
        missing_grace: float = 0.0,
        cross_tally_window: Optional[float] = 60.0,
        on_degenerate: str = "keep",
    ) -> None:
        super().__init__(
            hypotheses,
            weights,
            kernel=kernel,
            max_hypotheses=max_hypotheses,
            prune_fraction=prune_fraction,
            missing_grace=missing_grace,
            cross_tally_window=cross_tally_window,
            on_degenerate=on_degenerate,
        )
        self._state = EnsembleState.from_hypotheses(self._hypotheses)
        self._weight_array = np.asarray(self._weights, dtype=float)
        # The scalar containers are not used by this backend; drop them so
        # stale objects cannot leak through (every accessor is overridden).
        self._hypotheses = []
        self._weights = []

    # -------------------------------------------------------------- inspection

    @property
    def state(self) -> EnsembleState:
        """The underlying struct-of-arrays ensemble (read-mostly)."""
        return self._state

    @property
    def hypotheses(self) -> list[Hypothesis]:
        return [self._state.materialize(row) for row in range(self._state.size)]

    @property
    def weights(self) -> list[float]:
        return self._weight_array.tolist()

    def __len__(self) -> int:
        return self._state.size

    def __iter__(self):
        return iter(zip(self.hypotheses, self.weights))

    def top_rows(self, count: int) -> tuple[np.ndarray, list[float]]:
        """The ``count`` heaviest rows and their weights, heaviest first.

        The planner's no-materialization accessor.  A stable argsort on the
        negated weights reproduces the scalar backend's ``heapq.nlargest``
        selection exactly (both order descending with ties broken toward
        the lower index).
        """
        order = np.argsort(-self._weight_array, kind="stable")[:count]
        return order, self._weight_array[order].tolist()

    def top(self, count: int) -> list[tuple[Hypothesis, float]]:
        rows, weights = self.top_rows(count)
        return [
            (self._state.materialize(int(row)), weight)
            for row, weight in zip(rows.tolist(), weights)
        ]

    def map_estimate(self) -> Hypothesis:
        weights = self._weight_array.tolist()
        return self._state.materialize(max(range(len(weights)), key=weights.__getitem__))

    def map_link_rate_bps(self) -> float:
        weights = self._weight_array.tolist()
        row = max(range(len(weights)), key=weights.__getitem__)
        return float(self._state.link_rate[row])

    def decision_signature(self, count: int, queue_resolution_bits: float) -> tuple:
        rows, weights = self.top_rows(count)
        state = self._state
        parts = []
        for row, weight in zip(rows.tolist(), weights):
            busy = bool(state.svc_active[row])
            backlog = float(state.queue_bits[row]) + (
                float(state.svc_size[row]) if busy else 0.0
            )
            parts.append(
                (
                    state.params_keys[row],
                    round(weight, 3),
                    bool(state.gate_on[row]),
                    round(backlog / queue_resolution_bits),
                    busy,
                )
            )
        return tuple(parts)

    # posterior_mean / posterior_marginal / effective_sample_size / entropy
    # are inherited: the base-class formulas read these two storage hooks.

    def _weight_values(self) -> list[float]:
        return self._weight_array.tolist()

    def _parameter_dicts(self):
        return self._state.params_dicts

    # ------------------------------------------------------------------ update

    def record_send(self, seq: int, size_bits: float, time: float) -> None:
        engine.send_own(self._state, seq, size_bits, time)

    def update(self, now: float, acks: Iterable[AckObservation] = ()) -> None:
        acks = list(acks)
        self.acked_seqs.update(ack.seq for ack in acks)

        hook = self.stage_hook
        branch_state, parent, probability = engine.fork_and_advance(self._state, now)
        if hook is not None:
            # Same checkpoints as the scalar update, captured at the same
            # semantic points: branch order is the interleaved stay/switch
            # order both backends produce, and signatures are taken before
            # scoring charges losses into the lost-seq set.
            hook("fork", {"parents": parent.tolist(), "probabilities": probability.tolist()})
            hook(
                "advance",
                {
                    "time": now,
                    "signatures": [
                        branch_state.materialize(row).signature()
                        for row in range(branch_state.size)
                    ],
                },
            )
        prior_weight = self._weight_array[parent] * probability
        log_likelihood = score_and_bookkeep(
            branch_state,
            acks,
            now,
            self.kernel,
            self.acked_seqs,
            missing_grace=self.missing_grace,
        )
        if hook is not None:
            hook("score", {"log_likelihoods": log_likelihood.tolist()})
        # exp over a Python loop: ll <= 0 always, and math.exp matches the
        # scalar path's per-hypothesis call exactly.
        likelihood = np.array([math.exp(value) for value in log_likelihood.tolist()])
        candidate_weight = prior_weight * likelihood
        candidate_mask = log_likelihood != -np.inf

        self.updates_applied += 1
        candidate_index = np.nonzero(candidate_mask)[0]
        candidate_sum = sum(candidate_weight[candidate_index].tolist())
        if candidate_index.size == 0 or candidate_sum <= 0.0:
            self.degenerate_updates += 1
            if self.on_degenerate == "raise":
                raise DegenerateBeliefError(
                    f"every hypothesis was rejected at t={now:.3f} "
                    f"({len(acks)} acknowledgements in the update)"
                )
            kept_index = np.arange(branch_state.size)
            kept_weights = prior_weight
        else:
            kept_index = candidate_index
            kept_weights = candidate_weight[candidate_index]

        kept_index, kept_weights = self._compact_rows(branch_state, kept_index, kept_weights)
        if hook is not None:
            hook(
                "compact",
                {"count": int(kept_index.size), "weights": np.asarray(kept_weights).tolist()},
            )
        kept_index, kept_weights = self._prune_rows(kept_index, kept_weights)
        if hook is not None:
            hook(
                "prune",
                {"count": int(kept_index.size), "weights": np.asarray(kept_weights).tolist()},
            )
        self._state = branch_state.select(kept_index)
        # Built-in sum over the list keeps the normalizer's float accumulation
        # identical to the scalar path's ordered summation.
        total = sum(kept_weights.tolist())
        if total <= 0.0:
            raise InferenceError("cannot normalize an all-zero weight vector")
        self._weight_array = kept_weights / total
        if hook is not None:
            hook(
                "posterior",
                {
                    "weights": self._weight_array.tolist(),
                    "signatures": [
                        self._state.materialize(row).signature()
                        for row in range(self._state.size)
                    ],
                },
            )

    # ----------------------------------------------------------------- helpers

    def _compact_rows(
        self, state: EnsembleState, rows: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge rows whose latent state digests are identical.

        Same grouping as the scalar ``Hypothesis.signature`` (parameter
        assignment, gate, queue contents, in-service packet, next cross
        arrival, charged-lost set — packed into per-row bytes by
        :meth:`EnsembleState.signature_digest`).  Groups keep the scalar
        path's first-occurrence order, and ``np.add.at`` accumulates each
        group's weights left to right — the identical float addition
        sequence the scalar merge performs.
        """
        digests = state.signature_digest(rows)
        merged: dict[bytes, int] = {}
        kept_positions: list[int] = []
        kept_weights: list[float] = []
        weight_list = weights.tolist()
        for position, key in enumerate(digests):
            slot = merged.get(key)
            if slot is not None:
                kept_weights[slot] += weight_list[position]
                self.compacted_away += 1
            else:
                merged[key] = len(kept_positions)
                kept_positions.append(position)
                kept_weights.append(weight_list[position])
        if len(kept_positions) == rows.size:
            return rows, weights
        return rows[np.asarray(kept_positions, dtype=np.int64)], np.asarray(
            kept_weights, dtype=float
        )

    def _prune_rows(
        self, rows: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scalar-identical prune: threshold, stable descending sort, cap."""
        if rows.size == 0:
            return rows, weights
        threshold = weights.max() * self.prune_fraction
        keep = weights >= threshold
        rows = rows[keep]
        weights = weights[keep]
        # Stable argsort on the negated weights == the scalar path's stable
        # descending sort (ties keep candidate order).
        order = np.argsort(-weights, kind="stable")[: self.max_hypotheses]
        return rows[order], weights[order]


BELIEF_BACKENDS.register("vectorized", VectorizedBeliefState)
