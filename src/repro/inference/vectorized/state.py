"""Struct-of-arrays storage for a hypothesis ensemble.

:class:`EnsembleState` holds the latent state of every hypothesis in one set
of NumPy buffers, one row per hypothesis:

* static configuration parameters (link rate, buffer capacity, loss rate,
  cross-traffic rate, gate dwell time) plus precomputed log-likelihood
  constants,
* the dynamic link-model state (gate, next cross arrival, the packet in
  service, the queue as fixed-width 2D ring buffers, queued bits),
* the own-packet ledger: one *column* per sequence number the sender has
  transmitted, holding each row's prediction (none / delivered / dropped),
  prediction time, and the scoring bookkeeping bits (resolved, charged-lost).

All hypotheses produced by a :class:`~repro.inference.belief.BeliefState`
evolve in lockstep — every row sees the same sends and the same update
times — so the model clock is a single scalar shared by the whole ensemble,
and the own-packet ledger columns are shared too.

Rows can be gathered (:meth:`select`), scatter-merged with another state
(:meth:`interleave`, used when the gate forks the ensemble), and
materialized back into ordinary
:class:`~repro.inference.hypothesis.Hypothesis` objects for the planner.

The one piece of scalar-model state deliberately *not* carried here is the
cross-traffic delivery/drop tally: it is history rather than latent state,
nothing in scoring, compaction, or planner rollouts reads the historical
tally, and dropping it keeps the hot loop free of per-row Python lists.
Materialized hypotheses therefore start with an empty
:class:`~repro.inference.linkmodel.CrossTally`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import InferenceError
from repro.inference.hypothesis import Hypothesis

#: Integer flow codes used inside the array buffers.
FLOW_OWN = 0
FLOW_CROSS = 1

#: Prediction states in the own-packet ledger.
PRED_NONE = 0
PRED_DELIVERED = 1
PRED_DROPPED = 2

_FLOW_NAMES = {FLOW_OWN: "own", FLOW_CROSS: "cross"}
_FLOW_CODES = {"own": FLOW_OWN, "cross": FLOW_CROSS}

#: Initial queue-column / ledger-column capacity (both grow by doubling).
_MIN_QUEUE_CAPACITY = 8
_MIN_LEDGER_CAPACITY = 16

#: Per-row 1D buffers, gathered/scattered wholesale by select/interleave.
#: Must stay in sync with ``__slots__`` (there is one list, used by both).
_ROW_FIELDS = (
    "link_rate",
    "buffer_cap",
    "loss_rate",
    "cross_rate_pps",
    "cross_packet_bits",
    "mtts",
    "has_cross",
    "survival",
    "log_survival",
    "log_loss",
    "gate_on",
    "next_cross_time",
    "next_cross_seq",
    "svc_active",
    "svc_flow",
    "svc_seq",
    "svc_size",
    "svc_completion",
    "q_len",
    "queue_bits",
    "params_dicts",
    "params_keys",
    "params_id",
    "model_params",
)

#: Per-row 2D buffers padded to the queue capacity.
_QUEUE_FIELDS = ("q_flow", "q_seq", "q_size")

#: Per-row 2D buffers padded to the own-packet ledger capacity.
_LEDGER_FIELDS = ("pred_state", "pred_time", "resolved", "lost")


class EnsembleState:
    """Array-backed latent state of ``size`` hypotheses (one row each)."""

    __slots__ = (
        "size",
        "time",
        # static per-row parameters
        "link_rate",
        "buffer_cap",
        "loss_rate",
        "cross_rate_pps",
        "cross_packet_bits",
        "mtts",
        "has_cross",
        "survival",
        "log_survival",
        "log_loss",
        # dynamic link-model state
        "gate_on",
        "next_cross_time",
        "next_cross_seq",
        "svc_active",
        "svc_flow",
        "svc_seq",
        "svc_size",
        "svc_completion",
        "q_flow",
        "q_seq",
        "q_size",
        "q_len",
        "queue_bits",
        # own-packet ledger (shared columns, per-row contents)
        "own_seqs",
        "own_sent_times",
        "n_own",
        "pred_state",
        "pred_time",
        "resolved",
        "lost",
        # per-row Python metadata (object ndarrays so gathers stay in C)
        "params_dicts",
        "params_keys",
        "params_id",
        "model_params",
    )

    # ------------------------------------------------------------ construction

    @classmethod
    def from_hypotheses(cls, hypotheses: Sequence[Hypothesis]) -> "EnsembleState":
        """Pack scalar hypotheses into struct-of-arrays buffers."""
        if not hypotheses:
            raise InferenceError("cannot build an ensemble from zero hypotheses")
        states = [hypothesis.export_state() for hypothesis in hypotheses]
        time = states[0]["time"]
        for state in states:
            if state["time"] != time:
                raise InferenceError(
                    "the vectorized backend requires every hypothesis to share "
                    "one model clock (lockstep ensembles, as BeliefState maintains)"
                )

        self = cls.__new__(cls)
        size = len(hypotheses)
        self.size = size
        self.time = float(time)

        params = [hypothesis.model.params for hypothesis in hypotheses]
        self.model_params = _object_array(params)
        self.params_dicts = _object_array([hypothesis.params for hypothesis in hypotheses])
        keys = [tuple(sorted(hypothesis.params.items())) for hypothesis in hypotheses]
        self.params_keys = _object_array(keys)
        # Distinct parameter assignments interned as small integers, so the
        # compaction digest can treat "same configuration" as an int compare.
        interned: dict[tuple, int] = {}
        self.params_id = np.array(
            [interned.setdefault(key, len(interned)) for key in keys], dtype=np.int64
        )
        self.link_rate = np.array([p.link_rate_bps for p in params], dtype=float)
        self.buffer_cap = np.array([p.buffer_capacity_bits for p in params], dtype=float)
        self.loss_rate = np.array([p.loss_rate for p in params], dtype=float)
        self.cross_rate_pps = np.array([p.cross_rate_pps for p in params], dtype=float)
        self.cross_packet_bits = np.array([p.cross_packet_bits for p in params], dtype=float)
        self.mtts = np.array(
            [np.nan if p.mean_time_to_switch is None else p.mean_time_to_switch for p in params],
            dtype=float,
        )
        self.has_cross = np.array([p.has_cross_traffic for p in params], dtype=bool)
        # Constants reused by the batched likelihood: computed with the same
        # scalar arithmetic Hypothesis.score uses, so contributions match
        # bit for bit.
        survival = [1.0 - p.loss_rate for p in params]
        self.survival = np.array(survival, dtype=float)
        self.log_survival = np.array(
            [math.log(s) if s > 0.0 else -math.inf for s in survival], dtype=float
        )
        self.log_loss = np.array(
            [math.log(p.loss_rate) if p.loss_rate > 0.0 else -math.inf for p in params],
            dtype=float,
        )

        self.gate_on = np.array([s["gate_on"] for s in states], dtype=bool)
        self.next_cross_time = np.array([s["next_cross_time"] for s in states], dtype=float)
        self.next_cross_seq = np.array([s["next_cross_seq"] for s in states], dtype=np.int64)

        in_service = [s["in_service"] for s in states]
        self.svc_active = np.array([entry is not None for entry in in_service], dtype=bool)
        self.svc_flow = np.array(
            [_FLOW_CODES[entry[0]] if entry is not None else -1 for entry in in_service],
            dtype=np.int8,
        )
        self.svc_seq = np.array(
            [entry[1] if entry is not None else 0 for entry in in_service], dtype=np.int64
        )
        self.svc_size = np.array(
            [entry[2] if entry is not None else 0.0 for entry in in_service], dtype=float
        )
        self.svc_completion = np.array([s["service_completion"] for s in states], dtype=float)

        queues = [s["queue"] for s in states]
        capacity = max(_MIN_QUEUE_CAPACITY, max((len(q) for q in queues), default=0) + 2)
        self.q_flow = np.zeros((size, capacity), dtype=np.int8)
        self.q_seq = np.zeros((size, capacity), dtype=np.int64)
        self.q_size = np.zeros((size, capacity), dtype=float)
        self.q_len = np.zeros(size, dtype=np.int64)
        for row, queue in enumerate(queues):
            self.q_len[row] = len(queue)
            for slot, (flow, seq, bits) in enumerate(queue):
                self.q_flow[row, slot] = _FLOW_CODES[flow]
                self.q_seq[row, slot] = seq
                self.q_size[row, slot] = bits
        self.queue_bits = np.array([s["queue_bits"] for s in states], dtype=float)

        # Own-packet ledger: the union of every row's sequence numbers.  For
        # lockstep ensembles the rows agree; the union keeps hand-built
        # mixtures working too.
        seq_to_time: dict[int, float] = {}
        for state in states:
            for seq, sent_at in state["own_sent"].items():
                seq_to_time.setdefault(seq, sent_at)
        ordered = sorted(seq_to_time)
        count = len(ordered)
        ledger_cap = max(_MIN_LEDGER_CAPACITY, count)
        self.own_seqs = np.zeros(ledger_cap, dtype=np.int64)
        self.own_sent_times = np.zeros(ledger_cap, dtype=float)
        self.own_seqs[:count] = ordered
        self.own_sent_times[:count] = [seq_to_time[seq] for seq in ordered]
        self.n_own = count
        self.pred_state = np.zeros((size, ledger_cap), dtype=np.int8)
        self.pred_time = np.zeros((size, ledger_cap), dtype=float)
        self.resolved = np.zeros((size, ledger_cap), dtype=bool)
        self.lost = np.zeros((size, ledger_cap), dtype=bool)
        col_of = {seq: col for col, seq in enumerate(ordered)}
        for row, state in enumerate(states):
            for seq, kind, pred_time, _survival in state["predictions"]:
                col = col_of[seq]
                self.pred_state[row, col] = (
                    PRED_DELIVERED if kind == "delivered" else PRED_DROPPED
                )
                self.pred_time[row, col] = pred_time
            for seq in state["resolved"]:
                if seq in col_of:
                    self.resolved[row, col_of[seq]] = True
            for seq in state["lost"]:
                if seq in col_of:
                    self.lost[row, col_of[seq]] = True
        return self

    # --------------------------------------------------------------- gathering

    def select(self, indices: np.ndarray) -> "EnsembleState":
        """A new state holding ``indices``' rows (in that order)."""
        indices = np.asarray(indices, dtype=np.int64)
        out = EnsembleState.__new__(EnsembleState)
        out.size = int(indices.size)
        out.time = self.time
        for name in _ROW_FIELDS + _QUEUE_FIELDS + _LEDGER_FIELDS:
            setattr(out, name, getattr(self, name)[indices])
        out.own_seqs = self.own_seqs.copy()
        out.own_sent_times = self.own_sent_times.copy()
        out.n_own = self.n_own
        return out

    def interleave(
        self,
        other: "EnsembleState",
        self_positions: np.ndarray,
        other_positions: np.ndarray,
    ) -> "EnsembleState":
        """Scatter ``self``'s and ``other``'s rows into one combined state.

        ``self_positions`` / ``other_positions`` give each row's slot in the
        output (a permutation of ``0 .. size(self)+size(other)``).  This is
        ``concat`` + ``select`` fused into a single scatter — one write per
        buffer instead of a copy and a gather — used on the forking hot path
        where the output order must match the scalar update's interleaved
        branch order.
        """
        if other.n_own != self.n_own or not np.array_equal(
            other.own_seqs[: other.n_own], self.own_seqs[: self.n_own]
        ):
            raise InferenceError("cannot interleave ensembles with different ledgers")
        total = self.size + other.size
        queue_cap = max(self.q_flow.shape[1], other.q_flow.shape[1])
        ledger_cap = max(self.pred_state.shape[1], other.pred_state.shape[1])
        out = EnsembleState.__new__(EnsembleState)
        out.size = total
        out.time = self.time

        def scatter(name: str, width: int | None = None) -> None:
            first = getattr(self, name)
            second = getattr(other, name)
            if width is None:
                combined = np.empty(total, dtype=first.dtype)
                combined[self_positions] = first
                combined[other_positions] = second
            else:
                # Zero-fill keeps the canonical padding past q_len / n_own.
                combined = np.zeros((total, width), dtype=first.dtype)
                combined[self_positions, : first.shape[1]] = first
                combined[other_positions, : second.shape[1]] = second
            setattr(out, name, combined)

        for name in _ROW_FIELDS:
            scatter(name)
        for name in _QUEUE_FIELDS:
            scatter(name, queue_cap)
        for name in _LEDGER_FIELDS:
            scatter(name, ledger_cap)
        out.own_seqs = _pad_columns(self.own_seqs[None, :], ledger_cap)[0]
        out.own_sent_times = _pad_columns(self.own_sent_times[None, :], ledger_cap)[0]
        out.n_own = self.n_own
        return out

    # ---------------------------------------------------------------- capacity

    def ensure_queue_capacity(self, needed: int) -> None:
        """Grow the queue buffers so every row can hold ``needed`` packets."""
        capacity = self.q_flow.shape[1]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        self.q_flow = _pad_columns(self.q_flow, new_capacity)
        self.q_seq = _pad_columns(self.q_seq, new_capacity)
        self.q_size = _pad_columns(self.q_size, new_capacity)

    def register_own_seq(self, seq: int, sent_at: float) -> int:
        """Add (or refresh) a ledger column for ``seq``; returns its index."""
        pos = int(np.searchsorted(self.own_seqs[: self.n_own], seq))
        if pos < self.n_own and self.own_seqs[pos] == seq:
            self.own_sent_times[pos] = sent_at
            return pos
        capacity = self.pred_state.shape[1]
        if self.n_own + 1 > capacity:
            new_capacity = max(self.n_own + 1, capacity * 2)
            self.own_seqs = _pad_columns(self.own_seqs[None, :], new_capacity)[0]
            self.own_sent_times = _pad_columns(self.own_sent_times[None, :], new_capacity)[0]
            self.pred_state = _pad_columns(self.pred_state, new_capacity)
            self.pred_time = _pad_columns(self.pred_time, new_capacity)
            self.resolved = _pad_columns(self.resolved, new_capacity)
            self.lost = _pad_columns(self.lost, new_capacity)
        if pos < self.n_own:
            # Out-of-order sequence number: shift the tail columns right.
            stop = self.n_own
            self.own_seqs[pos + 1 : stop + 1] = self.own_seqs[pos:stop].copy()
            self.own_sent_times[pos + 1 : stop + 1] = self.own_sent_times[pos:stop].copy()
            for name in ("pred_state", "pred_time", "resolved", "lost"):
                array = getattr(self, name)
                array[:, pos + 1 : stop + 1] = array[:, pos:stop].copy()
        self.own_seqs[pos] = seq
        self.own_sent_times[pos] = sent_at
        self.pred_state[:, pos] = PRED_NONE
        self.pred_time[:, pos] = 0.0
        self.resolved[:, pos] = False
        self.lost[:, pos] = False
        self.n_own += 1
        return pos

    def column_of(self, seq: int) -> int | None:
        """The ledger column of ``seq``, or ``None`` if never transmitted."""
        pos = int(np.searchsorted(self.own_seqs[: self.n_own], seq))
        if pos < self.n_own and self.own_seqs[pos] == seq:
            return pos
        return None

    def lookup_columns(self, seqs: np.ndarray) -> np.ndarray:
        """Ledger columns of registered sequence numbers (must all exist)."""
        return np.searchsorted(self.own_seqs[: self.n_own], seqs)

    # ----------------------------------------------------------------- digests

    def signature_matrix(self, rows: np.ndarray) -> np.ndarray:
        """A ``(len(rows), width)`` uint8 matrix of per-row signatures.

        Two rows receive equal byte rows exactly when the scalar
        ``Hypothesis.signature`` tuples would compare equal: same parameter
        assignment (interned id), gate state, rounded queued bits, queue
        contents ``(flow, seq)`` in order, in-service packet with rounded
        completion, rounded next cross arrival, and charged-lost set.  The
        queue buffers are kept canonically zero-padded past ``q_len`` (the
        engine clears vacated slots), so the padded columns can be hashed
        wholesale; ``q_len`` itself is part of the digest, which keeps a
        zero-valued real cell distinct from padding.

        The fused belief backend groups rows directly on this matrix (a
        single ``np.unique`` over a void view) without ever materializing
        per-row ``bytes``; :meth:`signature_digest` is the bytes-per-row
        wrapper the dict-based compaction path consumes.
        """
        length = int(self.q_len[rows].max()) if rows.size else 0
        parts = [
            self.params_id[rows],
            self.gate_on[rows],
            _python_round(self.queue_bits[rows], 3),
            self.q_len[rows],
            self.q_flow[rows, :length],
            self.q_seq[rows, :length],
            self.svc_active[rows],
            self.svc_flow[rows],
            self.svc_seq[rows],
            _python_round(self.svc_completion[rows], 6),
            _python_round(self.next_cross_time[rows], 6),
            self.lost[rows, : self.n_own],
        ]
        flat = [
            np.ascontiguousarray(part).view(np.uint8).reshape(rows.size, -1)
            for part in (p[:, None] if p.ndim == 1 else p for p in parts)
            if part.size
        ]
        return np.concatenate(flat, axis=1)

    def signature_digest(self, rows: np.ndarray) -> list[bytes]:
        """One opaque ``bytes`` digest per row, for belief compaction.

        See :meth:`signature_matrix` for the grouping contract; this wrapper
        just freezes each matrix row into hashable ``bytes``.
        """
        packed = self.signature_matrix(rows)
        return [row.tobytes() for row in packed]

    def lane_arrays(self, rows: np.ndarray, copies: int, queue_width: int) -> dict:
        """Per-lane buffers for ``rows`` tiled ``copies`` times, rollout-ready.

        This is the fused path's lane-buffer view: the gathered arrays feed
        :func:`repro.inference.vectorized.rollout.batched_rollout_rows`
        directly, skipping the intermediate
        :class:`~repro.inference.vectorized.rollout.RolloutLanes` repack that
        ``pack_rows`` + ``batched_rollout`` would build.  The tile-of-gather
        is bit-identical to gather-then-``np.tile`` — the same float64/int8
        values land in the same lane slots — so the fused rollout reproduces
        the unfused one byte for byte.

        ``queue_width`` sizes the returned queue buffers (zero-padded past
        each row's ``q_len``); callers pass the rollout's precomputed
        arrival-bound width so no second resize happens inside the kernel.
        """
        idx = np.tile(np.asarray(rows, dtype=np.int64), copies)
        lanes = idx.size
        take = min(queue_width, self.q_flow.shape[1])
        q_flow = np.zeros((lanes, queue_width), dtype=np.int8)
        q_size = np.zeros((lanes, queue_width), dtype=float)
        q_flow[:, :take] = self.q_flow[idx, :take]
        q_size[:, :take] = self.q_size[idx, :take]
        return {
            "link_rate": self.link_rate[idx],
            "buffer_cap": self.buffer_cap[idx],
            "survival": self.survival[idx],
            "cross_rate_pps": self.cross_rate_pps[idx],
            "cross_packet_bits": self.cross_packet_bits[idx],
            "gate_on": self.gate_on[idx],
            "next_cross_time": self.next_cross_time[idx],
            "svc_active": self.svc_active[idx],
            "svc_flow": self.svc_flow[idx],
            "svc_size": self.svc_size[idx],
            "svc_completion": self.svc_completion[idx],
            "q_len": self.q_len[idx],
            "queue_bits": self.queue_bits[idx],
            "q_flow": q_flow,
            "q_size": q_size,
        }

    def checkpoint(self) -> dict:
        """A canonical, comparable snapshot of the whole ensemble.

        Used by :mod:`repro.diagnostics` to fingerprint where two backend
        replays diverge; the signatures reuse the scalar
        ``Hypothesis.signature`` grouping, so snapshots are directly
        comparable with the scalar backend's hypotheses.
        """
        return {
            "time": float(self.time),
            "size": int(self.size),
            "signatures": [self.materialize(row).signature() for row in range(self.size)],
        }

    # ----------------------------------------------------------- materialization

    def materialize(self, row: int) -> Hypothesis:
        """Rebuild one row as an ordinary scalar :class:`Hypothesis`.

        Predictions are emitted in chronological order; the scalar path
        builds them in event order, which is the same thing (dict equality is
        order-insensitive either way).
        """
        n = self.n_own
        seqs = self.own_seqs[:n].tolist()
        states = self.pred_state[row, :n].tolist()
        times = self.pred_time[row, :n].tolist()
        survival = float(self.survival[row])
        predictions = []
        for col, state in enumerate(states):
            if state == PRED_NONE:
                continue
            if state == PRED_DELIVERED:
                predictions.append((seqs[col], "delivered", times[col], survival))
            else:
                predictions.append((seqs[col], "dropped", times[col], 0.0))
        predictions.sort(key=lambda entry: (entry[2], entry[0]))

        length = int(self.q_len[row])
        queue = [
            (
                _FLOW_NAMES[int(self.q_flow[row, slot])],
                int(self.q_seq[row, slot]),
                float(self.q_size[row, slot]),
            )
            for slot in range(length)
        ]
        in_service = None
        if self.svc_active[row]:
            in_service = (
                _FLOW_NAMES[int(self.svc_flow[row])],
                int(self.svc_seq[row]),
                float(self.svc_size[row]),
            )
        resolved_row = self.resolved[row, :n]
        lost_row = self.lost[row, :n]
        state = {
            "time": self.time,
            "gate_on": bool(self.gate_on[row]),
            "next_cross_time": float(self.next_cross_time[row]),
            "next_cross_seq": int(self.next_cross_seq[row]),
            "queue": queue,
            "queue_bits": float(self.queue_bits[row]),
            "in_service": in_service,
            "service_completion": float(self.svc_completion[row]),
            "predictions": predictions,
            "own_sent": {
                seqs[col]: float(self.own_sent_times[col]) for col in range(n)
            },
            "resolved": [seqs[col] for col in np.nonzero(resolved_row)[0].tolist()],
            "lost": [seqs[col] for col in np.nonzero(lost_row)[0].tolist()],
        }
        return Hypothesis.from_state(
            self.params_dicts[row], self.model_params[row], state
        )

    # ----------------------------------------------------------------- helpers

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnsembleState(size={self.size}, t={self.time:.3f}, own={self.n_own})"


def _python_round(values: np.ndarray, digits: int) -> np.ndarray:
    """Element-wise built-in ``round`` (correct decimal rounding), fast.

    ``np.round`` scales by ``10**digits``, rints, and divides back, which
    disagrees with Python's correctly-rounded ``round`` when the scaled
    value lands within the scaling's floating-point error of a halfway
    point.  The compaction digest must group rows exactly as the scalar
    ``Hypothesis.signature`` — which uses ``round`` — does, so elements
    inside a conservatively wide band around the halfway points are
    re-rounded with the built-in; everything else keeps the (identical)
    ``np.round`` result.  Outside the band both computations reduce to
    "nearest integer ``n``, then the correctly-rounded ``n / 10**digits``",
    which is bit-identical.  ``inf`` passes through unchanged (its band
    test is NaN, i.e. not risky), as with ``round``.
    """
    out = np.round(values, digits)
    scaled = values * (10.0**digits)
    with np.errstate(invalid="ignore"):
        near_half = np.abs(scaled - np.floor(scaled) - 0.5) < 1e-6
    if near_half.any():
        risky = np.nonzero(near_half)[0]
        out[risky] = [round(value, digits) for value in values[risky].tolist()]
    return out


def _object_array(items: Sequence) -> np.ndarray:
    """A 1D object ndarray over ``items`` (kept 1D even for tuple elements)."""
    array = np.empty(len(items), dtype=object)
    for index, item in enumerate(items):
        array[index] = item
    return array


def _pad_columns(array: np.ndarray, width: int) -> np.ndarray:
    """Zero-pad a 1D/2D array's last axis out to ``width`` columns."""
    current = array.shape[-1]
    if current >= width:
        return array
    pad = [(0, 0)] * (array.ndim - 1) + [(0, width - current)]
    return np.pad(array, pad)
