"""The fused wake-up kernel: belief update and rollout on shared lane buffers.

This module is the ``"fused"`` entry in both backend registries.  It fuses
the two halves of an :class:`~repro.core.isender.ISender` wake-up that the
``"vectorized"`` backends still run as separate passes with a repack in
between:

* :class:`FusedBeliefState` keeps the vectorized update's fork → advance →
  score → compact → prune pipeline but replaces the one remaining Python
  loop — the per-row ``dict`` compaction over ``bytes`` digests — with a
  single ``np.unique`` grouping over the packed signature *matrix*
  (:meth:`EnsembleState.signature_matrix`), merging weights with a
  sequential ``np.add.at``.  Posteriors are bit-identical to the unfused
  backend: the grouping relation is the same byte-equality, groups keep
  first-occurrence order, and ``0.0 + w == w`` makes the zero-initialized
  scatter-add reproduce the dict loop's append-then-``+=`` additions
  exactly.
* :func:`decide_fused` is the planner half: the belief's top-k rows flow
  straight into :func:`~repro.inference.vectorized.rollout.batched_rollout_rows`
  through :meth:`EnsembleState.lane_arrays` — no intermediate
  :class:`~repro.inference.vectorized.rollout.RolloutLanes` repack — and the
  decide tail (utility, aggregation, tie handling) is the literal code the
  unfused backend runs (:func:`~repro.inference.vectorized.rollout._finish_decide`).

Both stage-hook surfaces are preserved: the belief fires the same
``fork``/``advance``/``score``/``compact``/``prune``/``posterior`` hooks
with the same payloads (the update pipeline is inherited), and the decide
path fires ``summary``/``lanes``/``rollout``/``utility``/``decision``
probes — the ``lanes`` checkpoint packs a ``RolloutLanes`` view lazily,
only when a probe is installed, so triage keeps localizing without taxing
the hot path.

The (sender × action × hypothesis) generalization lives in
:class:`repro.api.pool.BatchedSenderPool`, which drives many fused beliefs'
fan-outs through one :func:`batched_rollout_blocks` frontier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.api.backends import BELIEF_BACKENDS, ROLLOUT_BACKENDS
from repro.inference.vectorized.belief import VectorizedBeliefState
from repro.inference.vectorized.rollout import (
    _finish_decide,
    batched_rollout_rows,
    decide_vectorized,
    pack_rows,
)
from repro.inference.vectorized.state import EnsembleState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.planner import Decision, ExpectedUtilityPlanner
    from repro.inference.belief import BeliefState


class FusedBeliefState(VectorizedBeliefState):
    """A :class:`VectorizedBeliefState` with fully vectorized compaction.

    Every inherited stage is unchanged; only ``_compact_rows`` differs, and
    only in *how* it groups — ``np.unique`` over the signature matrix's
    rows viewed as opaque fixed-width byte scalars, instead of a Python
    ``dict`` over per-row ``bytes``.  Equal bytes group together under both,
    so the partition is identical; the ordering and additions are arranged
    to match the dict loop's exactly (see ``_compact_rows``).
    """

    backend = "fused"

    def _compact_rows(
        self, state: EnsembleState, rows: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge rows whose latent state digests are identical — batched.

        Bit-identical to the base class's dict loop:

        * grouping: byte-equality of signature rows, the same relation the
          ``bytes`` dict keys induce;
        * order: groups are emitted in first-occurrence order
          (``np.unique``'s ``return_index`` gives each group's first
          position; a stable argsort over those restores encounter order);
        * weights: ``np.add.at`` is unbuffered and iterates positions left
          to right, so each group's weight accumulates in the identical
          float-addition sequence — the first occurrence lands on the
          zero-initialized slot (``0.0 + w == w`` exactly), later ones add
          in candidate order, just like the dict loop's ``+=``.
        """
        if rows.size == 0:
            return rows, weights
        packed = state.signature_matrix(rows)
        keys = np.ascontiguousarray(packed).view(
            np.dtype((np.void, packed.shape[1]))
        ).ravel()
        _, first_position, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        if first_position.size == rows.size:
            return rows, weights
        self.compacted_away += int(rows.size - first_position.size)
        order = np.argsort(first_position, kind="stable")
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = np.arange(order.size)
        group = rank[np.asarray(inverse).ravel()]
        merged = np.zeros(order.size, dtype=float)
        np.add.at(merged, group, weights)
        return rows[first_position[order]], merged


def _prepare_decide(planner: "ExpectedUtilityPlanner", belief: "BeliefState", now: float):
    """The pre-rollout half of a fused decide, shared with the sender pool.

    Selects the top-k ensemble rows, summarizes them, derives the action
    grid and horizon, and fires the ``summary``/``lanes`` probes.  Returns
    ``(state, rows, summary, actions, horizon, probe)`` — everything needed
    to build this sender's rollout fan-out, whether it runs alone
    (:func:`decide_fused` → ``batched_rollout_rows``) or as one block of a
    pooled (sender × action × hypothesis) pass
    (``BatchedSenderPool.decide_all`` → ``batched_rollout_blocks``).  Both
    callers then finish through the same ``_finish_decide`` tail, which is
    what makes pooled decisions bit-identical to standalone fused ones.
    """
    rows, weights = belief.top_rows(planner.top_k)
    state = belief.state
    summary = planner._summarize_rows(state, rows, weights)
    actions = planner.action_grid.actions(summary.service_time)
    horizon = planner._horizon_from(summary)
    probe = planner.decision_probe
    if probe is not None:
        probe(
            "summary",
            {
                "service_time": summary.service_time,
                "horizon": horizon,
                "weights": list(summary.weights),
                "actions": [action.delay for action in actions],
            },
        )
        # The checkpoint needs a materialized lane view; pack one lazily so
        # the probe-off hot path never pays for it.
        probe("lanes", pack_rows(state, rows).checkpoint())
    return state, rows, summary, actions, horizon, probe


@ROLLOUT_BACKENDS.register("fused")
def decide_fused(
    planner: "ExpectedUtilityPlanner", belief: "BeliefState", now: float
) -> "Decision":
    """The fused decide path behind ``rollout_backend="fused"``.

    The belief's top-k rows feed :func:`batched_rollout_rows` directly —
    ``EnsembleState.lane_arrays`` gathers the (action × hypothesis) lane
    buffers in one pass, skipping the ``RolloutLanes`` repack.  A scalar
    belief has no ensemble rows to alias, so it falls back to the unfused
    vectorized path (identical semantics, one extra pack).
    """
    if getattr(belief, "top_rows", None) is None:
        return decide_vectorized(planner, belief, now)
    state, rows, summary, actions, horizon, probe = _prepare_decide(planner, belief, now)
    outcome = batched_rollout_rows(
        state,
        rows,
        [action.delay for action in actions],
        horizon,
        planner.packet_bits,
        now,
    )
    return _finish_decide(planner, summary, actions, horizon, outcome, probe)


BELIEF_BACKENDS.register("fused", FusedBeliefState)
