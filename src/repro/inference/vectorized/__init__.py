"""Array-backed (NumPy struct-of-arrays) inference backend.

The scalar :class:`~repro.inference.belief.BeliefState` walks a Python list
of :class:`~repro.inference.hypothesis.Hypothesis` objects on every sender
wake-up — clone, advance, score, compact, prune, one hypothesis at a time.
At the default 512-hypothesis cap that per-object loop dominates every
experiment.  This package stores the whole ensemble as struct-of-arrays
NumPy buffers instead and batches each step across all rows:

* :mod:`~repro.inference.vectorized.state` — the buffers themselves
  (parameters, gate state, queue ring buffers, in-flight packet ledgers)
  plus on-demand materialization back to scalar hypotheses,
* :mod:`~repro.inference.vectorized.engine` — batched forward simulation
  (``advance`` / ``send_own``) and gate forking,
* :mod:`~repro.inference.vectorized.scoring` — batched log-space
  likelihood accumulation with scalar-identical semantics,
* :mod:`~repro.inference.vectorized.belief` — the drop-in
  :class:`VectorizedBeliefState`,
* :mod:`~repro.inference.vectorized.rollout` — the batched planner
  rollout engine: every (action × hypothesis) lane advanced through one
  masked event frontier, packed straight from ensemble rows (no scalar
  ``Hypothesis`` materialization) or from ``export_state()`` when the
  belief backend is scalar.

Select it anywhere a belief is built via
``BeliefState.from_prior(..., backend="vectorized")`` (the scalar path
remains the reference implementation), and on the planner via
``ExpectedUtilityPlanner(..., rollout_backend="vectorized")``.
"""

from repro.inference.vectorized.belief import VectorizedBeliefState
from repro.inference.vectorized.rollout import (
    BatchedRolloutOutcome,
    RolloutLanes,
    batched_rollout,
    pack_hypotheses,
    pack_rows,
)
from repro.inference.vectorized.state import EnsembleState

__all__ = [
    "BatchedRolloutOutcome",
    "EnsembleState",
    "RolloutLanes",
    "VectorizedBeliefState",
    "batched_rollout",
    "pack_hypotheses",
    "pack_rows",
]
