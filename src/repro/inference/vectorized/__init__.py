"""Array-backed (NumPy struct-of-arrays) inference backend.

The scalar :class:`~repro.inference.belief.BeliefState` walks a Python list
of :class:`~repro.inference.hypothesis.Hypothesis` objects on every sender
wake-up — clone, advance, score, compact, prune, one hypothesis at a time.
At the default 512-hypothesis cap that per-object loop dominates every
experiment.  This package stores the whole ensemble as struct-of-arrays
NumPy buffers instead and batches each step across all rows:

* :mod:`~repro.inference.vectorized.state` — the buffers themselves
  (parameters, gate state, queue ring buffers, in-flight packet ledgers)
  plus on-demand materialization back to scalar hypotheses,
* :mod:`~repro.inference.vectorized.engine` — batched forward simulation
  (``advance`` / ``send_own``) and gate forking,
* :mod:`~repro.inference.vectorized.scoring` — batched log-space
  likelihood accumulation with scalar-identical semantics,
* :mod:`~repro.inference.vectorized.belief` — the drop-in
  :class:`VectorizedBeliefState`.

Select it anywhere a belief is built via
``BeliefState.from_prior(..., backend="vectorized")`` (the scalar path
remains the reference implementation).
"""

from repro.inference.vectorized.belief import VectorizedBeliefState
from repro.inference.vectorized.state import EnsembleState

__all__ = ["EnsembleState", "VectorizedBeliefState"]
