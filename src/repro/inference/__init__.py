"""Bayesian inference over uncertain network configurations.

The sender models the network as a nondeterministic automaton and maintains
a probability distribution over its possible configurations (§3.2).  This
package provides:

* :mod:`repro.inference.parameters` — discretized parameter grids.
* :mod:`repro.inference.prior` — prior distributions over configurations,
  including the paper's §4 prior.
* :mod:`repro.inference.observation` — the sender's observation records
  (what was sent, which acknowledgements arrived).
* :mod:`repro.inference.likelihood` — likelihood kernels: exact rejection
  (the paper's scheme) and a Gaussian tolerance kernel.
* :mod:`repro.inference.linkmodel` — a fast packet-level model of the
  Figure-2 topology class (pinger / buffer / link / last-mile loss).
* :mod:`repro.inference.hypothesis` — one candidate configuration: model
  state plus latent cross-traffic gating, with forking and scoring.
* :mod:`repro.inference.belief` — the weighted ensemble of hypotheses and
  its sequential Bayesian update (fork, score, prune, compact, renormalize).
* :mod:`repro.inference.vectorized` — the NumPy struct-of-arrays backend
  implementing the same update as batched array operations; select it with
  ``BeliefState.from_prior(..., backend="vectorized")``.
"""

from repro.inference.belief import BeliefState
from repro.inference.hypothesis import Hypothesis
from repro.inference.likelihood import ExactMatchKernel, GaussianKernel, LikelihoodKernel
from repro.inference.linkmodel import LinkModel, LinkModelParams
from repro.inference.observation import AckObservation, SentRecord
from repro.inference.parameters import ParameterGrid, ParameterSpec, uniform_grid
from repro.inference.prior import Prior, figure3_prior, single_link_prior

__all__ = [
    "AckObservation",
    "BeliefState",
    "ExactMatchKernel",
    "GaussianKernel",
    "Hypothesis",
    "LikelihoodKernel",
    "LinkModel",
    "LinkModelParams",
    "ParameterGrid",
    "ParameterSpec",
    "Prior",
    "SentRecord",
    "figure3_prior",
    "single_link_prior",
    "uniform_grid",
]
