"""Structured tracing of simulation activity.

A :class:`TraceRecorder` collects :class:`TraceRecord` rows (time, element,
event kind, free-form fields).  Elements call :meth:`TraceRecorder.record`
when tracing is attached; recording is a no-op by default so the hot path
stays cheap.  Experiments use traces to build the time series that the
paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(slots=True)
class TraceRecord:
    """One traced occurrence inside a simulation."""

    time: float
    element: str
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor for a field value."""
        return self.fields.get(key, default)


class TraceRecorder:
    """Accumulates :class:`TraceRecord` rows, optionally filtered by kind."""

    def __init__(self, kinds: Iterable[str] | None = None) -> None:
        self._records: list[TraceRecord] = []
        self._kinds = set(kinds) if kinds is not None else None
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def record(self, time: float, element: str, kind: str, **fields: Any) -> None:
        """Store one record unless its kind is filtered out."""
        if self._kinds is not None and kind not in self._kinds:
            return
        row = TraceRecord(time=time, element=element, kind=kind, fields=fields)
        self._records.append(row)
        for listener in self._listeners:
            listener(row)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` for every future record (after filtering)."""
        self._listeners.append(listener)

    def clear(self) -> None:
        """Drop all stored records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, kind: str | None = None, element: str | None = None) -> list[TraceRecord]:
        """Return the stored records matching the given kind and/or element."""
        rows = self._records
        if kind is not None:
            rows = [row for row in rows if row.kind == kind]
        if element is not None:
            rows = [row for row in rows if row.element == element]
        return list(rows)

    def series(self, kind: str, field_name: str, element: str | None = None) -> list[tuple[float, Any]]:
        """Return ``(time, fields[field_name])`` pairs for records of ``kind``."""
        return [
            (row.time, row.fields[field_name])
            for row in self.filter(kind=kind, element=element)
            if field_name in row.fields
        ]
