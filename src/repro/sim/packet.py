"""The packet data type moved between network elements.

The paper assumes the sender always transmits packets of uniform length
(§3.2); nevertheless the packet carries its size explicitly so that cross
traffic, acknowledgements, and future extensions can use different sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.units import DEFAULT_PACKET_BITS

_packet_counter = itertools.count()


@dataclass(slots=True)
class Packet:
    """A data packet.

    Attributes
    ----------
    seq:
        Per-flow sequence number, assigned by the sender.
    flow:
        Name of the flow the packet belongs to (e.g. ``"isender"``,
        ``"cross"``).  Elements such as the Diverter route on this field.
    size_bits:
        Payload size in bits.
    created_at:
        Simulation time at which the sender created the packet.
    sent_at:
        Time the packet actually entered the network (usually equal to
        ``created_at`` for our senders).
    delivered_at:
        Time the packet reached a Receiver, or ``None`` if still in flight
        or dropped.
    dropped_at:
        Time the packet was dropped (by a Buffer overflow or Loss element),
        or ``None``.
    drop_reason:
        Short string identifying the dropping element, or ``None``.
    hops:
        Number of elements the packet has traversed (incremented by
        :meth:`repro.sim.element.Element.emit`).
    uid:
        Globally unique packet id, useful for tracing.
    meta:
        Free-form annotations (e.g. link-layer retransmission count).
    """

    seq: int
    flow: str
    size_bits: float = DEFAULT_PACKET_BITS
    created_at: float = 0.0
    sent_at: float | None = None
    delivered_at: float | None = None
    dropped_at: float | None = None
    drop_reason: str | None = None
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_counter))
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> float:
        """Payload size in bytes."""
        return self.size_bits / 8.0

    @property
    def in_flight(self) -> bool:
        """Whether the packet has neither been delivered nor dropped."""
        return self.delivered_at is None and self.dropped_at is None

    @property
    def delay(self) -> float | None:
        """One-way delay experienced by the packet, if delivered."""
        if self.delivered_at is None:
            return None
        origin = self.sent_at if self.sent_at is not None else self.created_at
        return self.delivered_at - origin

    def mark_dropped(self, time: float, reason: str) -> None:
        """Record that the packet was dropped at ``time`` by ``reason``."""
        self.dropped_at = time
        self.drop_reason = reason

    def copy(self) -> "Packet":
        """Return an independent copy of this packet (fresh uid, copied meta)."""
        return Packet(
            seq=self.seq,
            flow=self.flow,
            size_bits=self.size_bits,
            created_at=self.created_at,
            sent_at=self.sent_at,
            delivered_at=self.delivered_at,
            dropped_at=self.dropped_at,
            drop_reason=self.drop_reason,
            hops=self.hops,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(flow={self.flow!r}, seq={self.seq}, size={self.size_bits:g}b, "
            f"created={self.created_at:.3f})"
        )
