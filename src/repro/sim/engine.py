"""The discrete-event simulation engine.

:class:`Simulator` owns a monotonically non-decreasing clock and a priority
queue of :class:`~repro.sim.events.Event` objects.  It is deliberately
small: elements schedule callbacks, the engine fires them in time order.
Determinism is guaranteed by the ``(time, priority, insertion sequence)``
ordering and by routing all randomness through
:class:`~repro.sim.random.RngRegistry` streams rather than global state.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    1
    >>> fired
    ['hello']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._event_seq = 0
        self._events_processed = 0
        self._live_events = 0
        self._running = False

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled events that have not been cancelled.

        Maintained as a live counter — incremented on schedule, decremented
        on fire and on cancellation — so the property is O(1) rather than a
        rescan of the whole heap (which showed up in long runs that poll it).
        """
        return self._live_events

    # -------------------------------------------------------------- scheduling

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute time ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` lies in the simulated past or is not finite.
        """
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at {time:.6f}, clock is already at {self._now:.6f}"
            )
        event = Event(time, priority, self._event_seq, callback, args, kwargs)
        event._owner = self
        self._event_seq += 1
        self._live_events += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` in seconds."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority, **kwargs)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # ---------------------------------------------------------------- running

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._discard_dead()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Fire the next live event.

        Returns
        -------
        bool
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        self._discard_dead()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue returned an event from the past")
        event._finalized = True
        self._live_events -= 1
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would advance strictly beyond this time.  The
            clock is left at ``until`` if every event up to ``until`` was
            actually processed (queue drained or next event lies beyond it).
            ``None`` runs until the queue drains.
        max_events:
            Optional hard cap on the number of events fired by this call,
            useful as a runaway guard in tests.

        Returns
        -------
        int
            Number of events fired by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        exhausted = False
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or (until is not None and next_time > until):
                    # Every event at or before `until` has been processed.
                    exhausted = True
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        # Fast-forward the clock only when the queue was genuinely drained or
        # exhausted up to `until`; a max_events stop leaves events pending at
        # or before `until`, and jumping past them would let a later run()
        # fire them "in the past".
        if exhausted and until is not None and until > self._now:
            self._now = until
        return fired

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without firing events.

        Only valid when no live event is pending before ``time``; used by
        hypothesis models that interleave analytic updates with event
        processing.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot move the clock backwards from {self._now:.6f} to {time:.6f}"
            )
        next_time = self.peek_time()
        if next_time is not None and next_time < time:
            raise SimulationError(
                "advance_to would skip a pending event; call run(until=...) instead"
            )
        self._now = time

    # ---------------------------------------------------------------- helpers

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` on a still-pending event."""
        self._live_events -= 1

    def _discard_dead(self) -> None:
        # Cancelled events were already removed from the live count by the
        # cancel hook; here they only need to leave the heap.
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)._finalized = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={self.pending})"
