"""Named, seeded random streams.

Every stochastic element in a simulation draws from its own named stream so
that (a) experiments are exactly reproducible given a seed, and (b) changing
how many random numbers one element consumes does not perturb the draws made
by another element.  Stream seeds are derived deterministically from the
registry seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(*components: object) -> int:
    """Derive a 64-bit seed from an arbitrary tuple of components.

    The derivation hashes the ``":"``-joined string forms of the components,
    so it is stable across processes and Python invocations (unlike
    ``hash()``, which is salted).  This is the primitive both
    :class:`RngRegistry` and the scenario runner use: a worker process can
    recompute the exact seed for any (scenario, parameters, trial) point
    without coordination.
    """
    text = ":".join(str(component) for component in components)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for deterministic per-name :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The registry-wide base seed."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same registry always returns the same object for a given name,
        so an element can look its stream up repeatedly without resetting it.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry with a seed derived from ``name``.

        Useful when an experiment runs several independent trials: each
        trial gets its own registry so element stream names can repeat.
        """
        return RngRegistry(self._derive_seed(f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over the stream names created so far."""
        return iter(sorted(self._streams))

    def _derive_seed(self, name: str) -> int:
        return derive_seed(self._seed, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
