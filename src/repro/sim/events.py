"""Scheduled events for the discrete-event engine.

An :class:`Event` is a callback bound to a simulation time.  Events are
ordered by ``(time, priority, sequence)`` so that simultaneous events fire
in a deterministic order: lower priority values first, then insertion
order.  Cancelling an event marks it dead; the engine skips dead events
lazily when they reach the head of the queue.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule_at`;
    user code normally only keeps a reference in order to call
    :meth:`cancel` later (for example to clear a retransmission timer).
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "kwargs",
        "cancelled",
        "_owner",
        "_finalized",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        #: The engine that scheduled this event, notified on cancellation so
        #: it can maintain a live-event count without rescanning its queue.
        self._owner = None
        #: Set once the engine has popped the event (fired or discarded);
        #: cancelling after that point is a no-op.
        self._finalized = False

    def cancel(self) -> None:
        """Mark the event dead so the engine will skip it (idempotent)."""
        if self.cancelled or self._finalized:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled)."""
        return not self.cancelled

    def fire(self) -> None:
        """Invoke the callback.  The engine calls this; tests may too."""
        self.callback(*self.args, **self.kwargs)

    def sort_key(self) -> tuple[float, int, int]:
        """Total ordering key used by the engine's priority queue."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {name}, {state})"
