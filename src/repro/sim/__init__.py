"""Discrete-event simulation substrate.

This package provides the event-driven engine on which both the "real"
network of every experiment and the sender's hypothetical networks run:

* :class:`repro.sim.engine.Simulator` — the event loop.
* :class:`repro.sim.events.Event` — a scheduled callback.
* :class:`repro.sim.packet.Packet` — the unit of data moved between elements.
* :class:`repro.sim.element.Element` — base class for all network elements.
* :class:`repro.sim.random.RngRegistry` — named, seeded random streams.
* :class:`repro.sim.trace.TraceRecorder` — structured event tracing.
"""

from repro.sim.element import Element, Network, SourceElement
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.packet import Packet
from repro.sim.random import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "Element",
    "Event",
    "Network",
    "Packet",
    "RngRegistry",
    "Simulator",
    "SourceElement",
    "TraceRecorder",
]
