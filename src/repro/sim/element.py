"""Base classes for network elements and the :class:`Network` container.

The paper's model is "a language of network elements" (§3.1).  Every element
in :mod:`repro.elements` derives from :class:`Element`: it receives packets
from an upstream element, does something to them (queues, delays, drops,
duplicates ...), and emits them downstream.  Elements that originate traffic
(PINGER, the senders) additionally derive from :class:`SourceElement` and are
started when the enclosing :class:`Network` begins to run.

Wiring is single-output by default: ``a.connect(b)`` (or ``a >> b``) makes
``b`` the downstream of ``a``.  Fan-out and routing are modelled explicitly
with the combinator elements (SERIES, DIVERTER, EITHER) rather than with a
generic multi-port mechanism, mirroring the paper's vocabulary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from repro.errors import WiringError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.random import RngRegistry
from repro.sim.trace import TraceRecorder


class Element:
    """Base class for every network element.

    Subclasses implement :meth:`receive`.  They may also override
    :meth:`start` (called once when the network starts running),
    :meth:`children` (combinators must yield their internal elements so they
    get attached too), and :meth:`reset`.
    """

    #: Class-level counter used to generate unique default names.
    _instance_counter = 0

    def __init__(self, name: str | None = None) -> None:
        cls = type(self)
        cls._instance_counter += 1
        self.name = name or f"{cls.__name__.lower()}-{cls._instance_counter}"
        self._downstream: Optional[Element] = None
        self._sim: Optional[Simulator] = None
        self._rng_registry: Optional[RngRegistry] = None
        self._trace: Optional[TraceRecorder] = None
        self._attached = False
        self.emitted_count = 0
        self.received_count = 0

    # ----------------------------------------------------------------- wiring

    def connect(self, downstream: "Element") -> "Element":
        """Make ``downstream`` the next hop and return it (for chaining)."""
        if downstream is self:
            raise WiringError(f"element {self.name!r} cannot be connected to itself")
        self._downstream = downstream
        return downstream

    def __rshift__(self, downstream: "Element") -> "Element":
        """``a >> b`` is shorthand for ``a.connect(b)``."""
        return self.connect(downstream)

    @property
    def downstream(self) -> Optional["Element"]:
        """The element packets are emitted to, or ``None`` at the graph edge."""
        return self._downstream

    def children(self) -> Iterable["Element"]:
        """Internal elements owned by this one (combinators override this)."""
        return ()

    # ----------------------------------------------------------------- attach

    def attach(
        self,
        sim: Simulator,
        rng: RngRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        """Bind the element (and its children) to a simulator.

        Attaching twice to different simulators is an error; attaching twice
        to the same simulator is a harmless no-op, which lets a
        :class:`Network` attach a graph that shares elements.
        """
        if self._attached and self._sim is not sim:
            raise WiringError(f"element {self.name!r} is already attached to another simulator")
        self._sim = sim
        self._rng_registry = rng
        self._trace = trace
        self._attached = True
        for child in self.children():
            child.attach(sim, rng=rng, trace=trace)

    @property
    def sim(self) -> Simulator:
        """The simulator this element is attached to."""
        if self._sim is None:
            raise WiringError(f"element {self.name!r} is not attached to a simulator")
        return self._sim

    @property
    def attached(self) -> bool:
        """Whether :meth:`attach` has been called."""
        return self._attached

    def rng(self, purpose: str = "default"):
        """Return this element's named random stream for ``purpose``."""
        if self._rng_registry is None:
            # Elements used stand-alone (e.g. in unit tests) still need
            # deterministic behaviour, so fall back to a private registry.
            self._rng_registry = RngRegistry(seed=0)
        return self._rng_registry.stream(f"{self.name}/{purpose}")

    # ------------------------------------------------------------------ trace

    def trace(self, kind: str, **fields) -> None:
        """Record a trace row if a recorder is attached (cheap no-op otherwise)."""
        if self._trace is not None and self._sim is not None:
            self._trace.record(self._sim.now, self.name, kind, **fields)

    # -------------------------------------------------------------- data path

    def receive(self, packet: Packet) -> None:
        """Handle an incoming packet.  Subclasses must override."""
        raise NotImplementedError

    def emit(self, packet: Packet) -> None:
        """Forward ``packet`` to the downstream element.

        Packets emitted past the edge of the graph (no downstream) are
        counted and traced but otherwise silently discarded; experiments
        always terminate paths with an explicit Receiver or Collector, so a
        missing downstream in practice indicates a mis-wired test graph.
        """
        packet.hops += 1
        self.emitted_count += 1
        if self._downstream is None:
            self.trace("exit", seq=packet.seq, flow=packet.flow)
            return
        self._downstream.receive(packet)

    # ------------------------------------------------------------- life cycle

    def start(self) -> None:
        """Called once when the enclosing network starts running."""

    def reset(self) -> None:
        """Return the element to its initial state (counters, queues, timers)."""
        self.emitted_count = 0
        self.received_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class SourceElement(Element):
    """Base class for elements that originate packets (senders, PINGER)."""

    def receive(self, packet: Packet) -> None:
        raise WiringError(f"source element {self.name!r} does not accept incoming packets")


class Network:
    """A container that owns a simulator, its elements, and shared services.

    The network walks the element graph from the registered roots, attaches
    every reachable element, and starts all sources when :meth:`run` is
    called.

    Parameters
    ----------
    seed:
        Base seed for the per-element random streams.
    trace_kinds:
        If given, only these trace kinds are recorded (``None`` records all).
    """

    def __init__(self, seed: int = 0, trace_kinds: Iterable[str] | None = None) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.trace = TraceRecorder(kinds=trace_kinds)
        self._elements: list[Element] = []
        self._started = False

    def add(self, *elements: Element) -> None:
        """Register root elements (their downstream graphs are attached too)."""
        for element in elements:
            for reachable in _walk(element):
                if reachable not in self._elements:
                    self._elements.append(reachable)
                    reachable.attach(self.sim, rng=self.rng, trace=self.trace)

    @property
    def elements(self) -> list[Element]:
        """All attached elements, in registration/walk order."""
        return list(self._elements)

    def element(self, name: str) -> Element:
        """Look up an attached element by name."""
        for candidate in self._elements:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no element named {name!r} in network")

    def start(self) -> None:
        """Start all sources (idempotent)."""
        if self._started:
            return
        self._started = True
        for element in self._elements:
            element.start()

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Start sources if needed and run the event loop."""
        self.start()
        return self.sim.run(until=until, max_events=max_events)

    def reset(self) -> None:
        """Reset every element; the simulator and traces are replaced."""
        self.sim = Simulator()
        self.trace.clear()
        self._started = False
        for element in self._elements:
            element.reset()
            element._sim = self.sim  # re-bind without tripping the double-attach guard


def _element_classes() -> list[type[Element]]:
    """:class:`Element` and every (transitive) subclass."""
    classes: list[type[Element]] = []
    stack: list[type[Element]] = [Element]
    while stack:
        cls = stack.pop()
        classes.append(cls)
        stack.extend(cls.__subclasses__())
    return classes


def reset_instance_counters() -> None:
    """Zero the default-name counters of :class:`Element` and every subclass.

    Default element names ("loss-3", "buffer-7", ...) come from per-class
    instance counters, and an element's random streams are keyed by its name.
    A scenario built from default-named elements therefore draws different
    random numbers depending on how many elements earlier scenarios created
    in the same process.  The scenario runner executes each point with these
    counters zeroed so a point's results depend only on its spec and seed —
    identically in a fresh worker process and in a long-lived serial one.
    """
    for cls in _element_classes():
        cls._instance_counter = 0


@contextmanager
def fresh_instance_counters():
    """Run a block with zeroed name counters, then restore the caller's.

    The scenario runner wraps every point in this so points are
    deterministic (counters start at zero) *without* leaking the reset into
    the calling process — elements the caller creates after an in-process
    serial sweep keep counting from where they left off.
    """
    snapshot = {cls: cls._instance_counter for cls in _element_classes()}
    reset_instance_counters()
    try:
        yield
    finally:
        for cls, count in snapshot.items():
            cls._instance_counter = count


def _walk(root: Element) -> Iterator[Element]:
    """Yield ``root`` and every element reachable via downstream links/children."""
    seen: set[int] = set()
    stack = [root]
    while stack:
        element = stack.pop()
        if id(element) in seen:
            continue
        seen.add(id(element))
        yield element
        if element.downstream is not None:
            stack.append(element.downstream)
        stack.extend(element.children())
