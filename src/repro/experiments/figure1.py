"""Figure 1 — round-trip time of a TCP download over a bufferbloated cellular link.

The paper's motivating measurement shows the RTT of a TCP download over a
commercial LTE network climbing from roughly 100 ms to around ten seconds,
because the subnetwork hides non-congestive loss behind link-layer
retransmission and provisions a very deep buffer that a loss-driven sender
dutifully fills.  We reproduce the *mechanism* with the synthetic cellular
link of :mod:`repro.cellular`: a NewReno bulk transfer over a deep-buffered,
variable-rate, loss-hiding link.  The figure of merit is the shape — RTT
starting near the propagation delay and inflating by one to two orders of
magnitude as the buffer fills — rather than the absolute milliseconds of the
original Verizon trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.newreno import NewRenoSender
from repro.cellular.link import CellularLink
from repro.cellular.trace import RateProcess
from repro.elements.receiver import Receiver
from repro.metrics.summary import ExperimentRow
from repro.metrics.timeseries import TimeSeries, rtt_series
from repro.sim.element import Network
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class Figure1Result:
    """The RTT trace of the download and its summary statistics."""

    rtt: TimeSeries
    base_rtt: float
    duration: float
    throughput_bps: float
    link_layer_retransmissions: int
    buffer_drops: int
    peak_buffer_bits: float

    @property
    def max_rtt(self) -> float:
        """Largest observed round-trip time."""
        return self.rtt.max()

    @property
    def median_rtt(self) -> float:
        """Median observed round-trip time."""
        return self.rtt.percentile(0.5)

    @property
    def inflation_factor(self) -> float:
        """How many times the base RTT the worst observed RTT is."""
        return self.max_rtt / self.base_rtt

    def rows(self, window: float = 25.0) -> list[ExperimentRow]:
        """Windowed RTT summary — the series Figure 1 plots, as a table."""
        rows = []
        windowed = self.rtt.windowed(window)
        for time, value in windowed:
            segment = self.rtt.between(time, time + window)
            rows.append(
                ExperimentRow(
                    label=f"t={time:.0f}s",
                    values={
                        "mean_rtt (s)": value,
                        "max_rtt (s)": segment.max(),
                        "min_rtt (s)": segment.min(),
                    },
                )
            )
        rows.append(
            ExperimentRow(
                label="overall",
                values={
                    "mean_rtt (s)": self.rtt.mean(),
                    "max_rtt (s)": self.max_rtt,
                    "min_rtt (s)": self.rtt.min(),
                },
            )
        )
        return rows


def run_figure1(
    duration: float = 250.0,
    nominal_rate_bps: float = 4_000_000.0,
    min_rate_bps: float = 400_000.0,
    max_rate_bps: float = 10_000_000.0,
    buffer_seconds: float = 10.0,
    link_loss_rate: float = 0.05,
    retransmit_delay: float = 0.05,
    propagation_delay: float = 0.03,
    packet_bits: float = DEFAULT_PACKET_BITS,
    seed: int = 7,
) -> Figure1Result:
    """Run a NewReno bulk download over the synthetic cellular link.

    Parameters
    ----------
    buffer_seconds:
        Buffer depth expressed in seconds of traffic at the nominal rate —
        ten seconds reproduces the worst RTTs of the paper's Figure 1.
    link_loss_rate:
        Per-attempt loss probability hidden by link-layer retransmission.
    """
    network = Network(seed=seed)
    rate_process = RateProcess(
        nominal_bps=nominal_rate_bps,
        min_bps=min_rate_bps,
        max_bps=max_rate_bps,
        duration=duration + 10.0,
        seed=seed,
    )
    link = CellularLink(
        rate_process=rate_process,
        buffer_bits=buffer_seconds * nominal_rate_bps,
        loss_rate=link_loss_rate,
        retransmit_delay=retransmit_delay,
        propagation_delay=propagation_delay,
        name="cellular-link",
    )
    receiver = Receiver(name="mobile-receiver", accept_flows={"tcp"})
    # A modern bulk sender effectively slow-starts until it sees a loss; with
    # loss hidden by the link layer, that means it slow-starts until the
    # bloated buffer finally overflows — which is the whole point of Figure 1.
    sender = NewRenoSender(
        receiver,
        flow="tcp",
        packet_bits=packet_bits,
        name="newreno",
        initial_ssthresh=1e9,
        max_rto=120.0,
    )
    sender.connect(link)
    link.connect(receiver)
    network.add(sender)
    network.run(until=duration)

    samples = sender.rtt_series()
    series = rtt_series(samples) if samples else TimeSeries.from_pairs([(0.0, propagation_delay)])
    return Figure1Result(
        rtt=series,
        base_rtt=propagation_delay + packet_bits / nominal_rate_bps,
        duration=duration,
        throughput_bps=receiver.throughput_bps(0.0, duration, flow="tcp"),
        link_layer_retransmissions=link.link_layer_retransmissions,
        buffer_drops=link.drop_count,
        peak_buffer_bits=link.peak_occupancy_bits,
    )
