"""The motivating comparison: loss-blind TCP versus the model-based sender.

The introduction argues that TCP conflates stochastic loss with congestion:
on a path with 20 % non-congestive loss a loss-driven window collapses to a
trickle, even though the link itself is perfectly capable of carrying a full
load.  The model-based sender, whose prior includes the possibility of
stochastic loss, keeps sending at the link speed and simply accepts that a
fifth of its packets will need to be counted as lost.

This experiment is not one of the paper's numbered figures, but it is the
behaviour §1/§2 describe and the natural headline comparison for a library
user, so it gets a first-class runner and benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.newreno import NewRenoSender
from repro.baselines.window import WindowSender
from repro.api.config import SenderConfig
from repro.api.sender import build_sender
from repro.experiments.common import SenderSettings, as_sender_config
from repro.inference.prior import single_link_prior
from repro.metrics.summary import ExperimentRow
from repro.topology.presets import single_link_network
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class LossComparisonResult:
    """Goodput of TCP and of the ISender over the same lossy bottleneck."""

    loss_rate: float
    link_rate_bps: float
    duration: float
    tcp_goodput_bps: float
    tcp_utilization: float
    tcp_timeouts: int
    isender_goodput_bps: float
    isender_utilization: float
    isender_delivery_rate: float

    @property
    def isender_advantage(self) -> float:
        """How many times more goodput the model-based sender achieves."""
        if self.tcp_goodput_bps <= 0:
            return float("inf")
        return self.isender_goodput_bps / self.tcp_goodput_bps

    def rows(self) -> list[ExperimentRow]:
        return [
            ExperimentRow(
                label="NewReno",
                values={
                    "goodput (bps)": self.tcp_goodput_bps,
                    "utilization": self.tcp_utilization,
                    "timeouts": self.tcp_timeouts,
                },
            ),
            ExperimentRow(
                label="ISender",
                values={
                    "goodput (bps)": self.isender_goodput_bps,
                    "utilization": self.isender_utilization,
                    "delivery_rate": self.isender_delivery_rate,
                },
            ),
        ]


def run_loss_comparison(
    loss_rate: float = 0.2,
    link_rate_bps: float = 12_000.0,
    buffer_capacity_bits: float = 96_000.0,
    duration: float = 180.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
    seed: int = 5,
    tcp_factory: Callable[..., WindowSender] = NewRenoSender,
    settings: SenderSettings | SenderConfig | None = None,
) -> LossComparisonResult:
    """Run TCP and the ISender, one at a time, over the same lossy link."""
    # --- TCP -----------------------------------------------------------------
    tcp_network = single_link_network(
        link_rate_bps=link_rate_bps,
        buffer_capacity_bits=buffer_capacity_bits,
        loss_rate=loss_rate,
        packet_bits=packet_bits,
        sender_flow="tcp",
        seed=seed,
    )
    tcp_sender = tcp_factory(
        tcp_network.sender_receiver, flow="tcp", packet_bits=packet_bits, name="tcp-baseline"
    )
    tcp_sender.connect(tcp_network.entry)
    tcp_network.network.add(tcp_sender)
    tcp_network.network.run(until=duration)
    tcp_goodput = tcp_network.sender_receiver.throughput_bps(0.0, duration, flow="tcp")

    # --- ISender ---------------------------------------------------------------
    isender_config = (
        as_sender_config(settings) if settings is not None else SenderConfig(alpha=0.0)
    )
    isender_network = single_link_network(
        link_rate_bps=link_rate_bps,
        buffer_capacity_bits=buffer_capacity_bits,
        loss_rate=loss_rate,
        packet_bits=packet_bits,
        seed=seed,
    )
    prior = single_link_prior(
        link_rate_low=link_rate_bps * 2.0 / 3.0,
        link_rate_high=link_rate_bps * 4.0 / 3.0,
        link_rate_points=5,
        buffer_capacity_bits=buffer_capacity_bits,
        loss_rate=loss_rate,
        packet_bits=packet_bits,
    )
    isender = build_sender(isender_config, isender_network, prior=prior)
    isender_network.network.run(until=duration)
    isender_goodput = isender_network.sender_receiver.throughput_bps(0.0, duration)

    return LossComparisonResult(
        loss_rate=loss_rate,
        link_rate_bps=link_rate_bps,
        duration=duration,
        tcp_goodput_bps=tcp_goodput,
        tcp_utilization=tcp_goodput / link_rate_bps,
        tcp_timeouts=tcp_sender.timeouts,
        isender_goodput_bps=isender_goodput,
        isender_utilization=isender_goodput / link_rate_bps,
        isender_delivery_rate=isender.delivery_rate(),
    )
