"""Experiment runners that regenerate every figure and prose result of the paper.

Each runner is an ordinary function returning a result dataclass with (a)
the raw series the corresponding figure plots and (b) ``rows()`` — the
summary table a bench prints.  Durations and grid resolutions are
parameters so the benchmark suite can run shortened versions while examples
and EXPERIMENTS.md use the paper's full settings.
"""

from repro.experiments.ablation import AblationResult, run_inference_ablation
from repro.experiments.comparison import LossComparisonResult, run_loss_comparison
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure3 import Figure3AlphaResult, Figure3Result, run_figure3
from repro.experiments.simple import (
    ConvergenceResult,
    DrainResult,
    run_convergence_scenario,
    run_drain_scenario,
)

__all__ = [
    "AblationResult",
    "ConvergenceResult",
    "DrainResult",
    "Figure1Result",
    "Figure3AlphaResult",
    "Figure3Result",
    "LossComparisonResult",
    "run_convergence_scenario",
    "run_drain_scenario",
    "run_figure1",
    "run_figure3",
    "run_inference_ablation",
    "run_loss_comparison",
]
