"""The §3.3 policy-table benchmark: precomputed lookup vs. live planning.

Measures the offline-policy subsystem end to end on the Figure-3 default
configuration:

1. :func:`~repro.api.policy.precompute_policy_table` computes the table
   from a pilot run plus the burst-grid sweep (through the vectorized
   rollout lanes);
2. a **held-out run** (same config, different seed) checks fidelity: at
   every wake-up whose belief signature the table covers, the table's
   decision is compared against a fresh live-planned decision on the very
   same belief — the "same decision sequence at the table's signature
   resolution" criterion, free of trajectory-divergence noise;
3. the **steady-state decide path** is timed: repeated table lookups on a
   converged belief versus repeated uncached ``planner.decide`` calls.

Used by ``benchmarks/bench_policy_table.py`` (which writes the
``BENCH_policy.json`` regression record gating the ≥5× lookup speedup and
the decision-fidelity ratio) and runnable standalone::

    PYTHONPATH=src python -m repro.experiments.policy_bench
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.config import SenderConfig
from repro.api.policy import PolicyTable, precompute_policy_table
from repro.core.isender import ISender
from repro.inference.prior import figure3_prior
from repro.topology.presets import figure2_network


@dataclass(frozen=True)
class PolicyBenchConfig:
    """Shape of the precompute, the held-out fidelity run, and the timing."""

    #: Figure-3 default engines for the policy path (vectorized keeps the
    #: precompute sweep and the fallback planning on the lane engine).
    belief_backend: str = "vectorized"
    rollout_backend: str = "vectorized"
    #: Prior resolution of the Figure-3 default config (4*4*3*2*1 = 96).
    link_rate_points: int = 4
    cross_fraction_points: int = 4
    loss_points: int = 3
    buffer_points: int = 2
    fill_points: int = 1
    #: Pilot (precompute) and held-out runs.
    pilot_duration: float = 60.0
    pilot_seed: int = 2
    heldout_duration: float = 40.0
    heldout_seed: int = 5
    switch_interval: float = 30.0
    #: Timed decide calls per path.
    table_decides: int = 2_000
    live_decides: int = 15
    #: Tolerance for "same decision at the table's signature resolution":
    #: the signature rounds weights to 3 decimals, so two beliefs sharing a
    #: signature can derive action delays differing in the last ulp.
    decision_rel_tolerance: float = 1e-9

    def sender_config(self) -> SenderConfig:
        """The Figure-3 default sender configuration under test."""
        return SenderConfig(
            prior=figure3_prior(
                link_rate_points=self.link_rate_points,
                cross_fraction_points=self.cross_fraction_points,
                loss_points=self.loss_points,
                buffer_points=self.buffer_points,
                fill_points=self.fill_points,
            ),
            belief_backend=self.belief_backend,
            rollout_backend=self.rollout_backend,
            policy="table",
        )


class _CheckingPolicy:
    """Table decider that shadows every hit with a live-planned decision."""

    def __init__(self, table: PolicyTable, planner) -> None:
        self.table = table
        self.planner = planner
        self.pairs: list[tuple[float, float]] = []

    def decide(self, belief, now):
        hit = self.table.contains(belief)
        decision = self.table.decide(belief, now)
        if hit:
            live = self.planner.decide(belief, now)
            self.pairs.append((decision.delay, live.delay))
        return decision


@dataclass
class PolicyComparison:
    """Everything the BENCH_policy record and its gates need."""

    config: PolicyBenchConfig
    table_entries: int
    #: Held-out fidelity.
    heldout_decisions: int
    heldout_hits: int
    heldout_checked: int
    heldout_agreements: int
    #: Steady-state timing.
    table_wall_time_s: float
    table_decides: int
    live_wall_time_s: float
    live_decides: int
    mismatches: list[tuple[float, float]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Per-decision speedup of the table lookup over live planning."""
        table_per_decide = self.table_wall_time_s / self.table_decides
        live_per_decide = self.live_wall_time_s / self.live_decides
        return live_per_decide / table_per_decide

    @property
    def hit_rate(self) -> float:
        """Fraction of held-out wake-ups served from the precomputed table."""
        if not self.heldout_decisions:
            return 0.0
        return self.heldout_hits / self.heldout_decisions

    @property
    def decisions_match(self) -> bool:
        """Whether every checked table hit reproduced the live decision."""
        return self.heldout_checked > 0 and self.heldout_agreements == self.heldout_checked


def run_policy_comparison(
    config: PolicyBenchConfig | None = None, rounds: int = 3
) -> PolicyComparison:
    """Precompute, verify on a held-out run, and time the decide paths.

    The *minimum* wall time over ``rounds`` is each path's robust cost
    estimate, mirroring the planner bench.
    """
    config = config or PolicyBenchConfig()
    sender_config = config.sender_config()
    table = precompute_policy_table(
        sender_config,
        pilot_duration=config.pilot_duration,
        seed=config.pilot_seed,
        switch_interval=config.switch_interval,
    )
    table_entries = table.size

    # Held-out fidelity run: fresh seed, every table hit shadow-checked
    # against a live planner decision on the identical belief.  Learning is
    # frozen so the hit counters measure *precomputed* coverage only — a
    # learning table would count re-visits to its own run-time additions.
    table.hits = table.misses = 0
    table.learn = False
    network = figure2_network(
        switch_interval=config.switch_interval, seed=config.heldout_seed
    )
    belief = sender_config.build_belief()
    planner = sender_config.build_planner()
    checker = _CheckingPolicy(table, planner)
    sender = ISender(
        belief,
        planner,
        network.sender_receiver,
        flow=network.sender_flow,
        policy=checker,
    )
    sender.connect(network.entry)
    network.network.add(sender)
    network.network.run(until=config.heldout_duration)

    tolerance = config.decision_rel_tolerance
    agreements = sum(
        1
        for table_delay, live_delay in checker.pairs
        if abs(table_delay - live_delay)
        <= tolerance * max(1.0, abs(table_delay), abs(live_delay))
    )
    mismatches = [
        (table_delay, live_delay)
        for table_delay, live_delay in checker.pairs
        if abs(table_delay - live_delay)
        > tolerance * max(1.0, abs(table_delay), abs(live_delay))
    ]

    heldout_decisions = len(sender.decisions)
    heldout_hits = table.hits

    # Steady-state timing on the held-out run's final belief.  One decide
    # each (learning re-enabled) guarantees the signature is in the table
    # and warms allocators.
    table.learn = True
    now = config.heldout_duration
    table.decide(belief, now)
    planner.decide(belief, now)
    table_wall = live_wall = float("inf")
    for _ in range(max(1, rounds)):
        started = time.perf_counter()
        for _ in range(config.table_decides):
            table.decide(belief, now)
        table_wall = min(table_wall, time.perf_counter() - started)
        started = time.perf_counter()
        for _ in range(config.live_decides):
            planner.decide(belief, now)
        live_wall = min(live_wall, time.perf_counter() - started)

    return PolicyComparison(
        config=config,
        table_entries=table_entries,
        heldout_decisions=heldout_decisions,
        heldout_hits=heldout_hits,
        heldout_checked=len(checker.pairs),
        heldout_agreements=agreements,
        table_wall_time_s=table_wall,
        table_decides=config.table_decides,
        live_wall_time_s=live_wall,
        live_decides=config.live_decides,
        mismatches=mismatches,
    )


def main() -> None:  # pragma: no cover - manual entry point
    comparison = run_policy_comparison()
    per_table_us = comparison.table_wall_time_s / comparison.table_decides * 1e6
    per_live_ms = comparison.live_wall_time_s / comparison.live_decides * 1e3
    print(f"table entries       : {comparison.table_entries}")
    print(
        f"held-out fidelity   : {comparison.heldout_agreements}/"
        f"{comparison.heldout_checked} hits reproduce the live decision "
        f"(hit rate {comparison.hit_rate:.0%})"
    )
    print(f"table lookup        : {per_table_us:8.1f} us/decide")
    print(f"live planning       : {per_live_ms:8.2f} ms/decide")
    print(f"steady-state speedup: {comparison.speedup:8.0f} x")


if __name__ == "__main__":  # pragma: no cover
    main()
