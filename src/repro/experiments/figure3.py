"""Figure 3 — varying the priority given to cross traffic.

The paper's main experiment: the Figure-2 network (12 kbit/s link, 70 %
cross traffic switched on/off every 100 seconds, 20 % last-mile loss,
96,000-bit buffer) with the ISender run once per value of α, the weight the
utility function gives to cross-traffic throughput.  The paper reports the
sequence-number-vs-time traces and makes four qualitative claims:

1. every sender starts slowly while it is uncertain of the parameters;
2. while the cross traffic is off, the sender transmits at the link speed;
3. while the cross traffic is on, higher α means a more deferential sender
   (α = 1 roughly fills the capacity the cross traffic leaves unused);
4. only the α < 1 sender causes buffer overflows.

:func:`run_figure3` reproduces the experiment and
:meth:`Figure3Result.check_claims` verifies the four claims on the measured
data (with tolerances, since our substrate is not the authors' simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.api.config import SenderConfig
from repro.api.sender import build_sender
from repro.experiments.common import SenderSettings, as_sender_config
from repro.inference.prior import figure3_prior
from repro.metrics.summary import ExperimentRow
from repro.metrics.timeseries import TimeSeries
from repro.runner.backends import RunnerBackend, SerialRunner
from repro.topology.presets import figure2_network
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class Figure3AlphaResult:
    """Measurements for one value of α."""

    alpha: float
    sequence_series: TimeSeries
    packets_sent: int
    packets_acked: int
    rate_on1_bps: float
    rate_off_bps: float
    rate_on2_bps: float
    cross_rate_on2_bps: float
    buffer_drops: int
    cross_drops: int
    final_hypotheses: int
    degenerate_updates: int

    def row(self) -> ExperimentRow:
        """One summary row (the per-α series point the paper's figure shows)."""
        return ExperimentRow(
            label=f"alpha={self.alpha:g}",
            values={
                "sent": self.packets_sent,
                "acked": self.packets_acked,
                "rate_cross_on_1 (bps)": self.rate_on1_bps,
                "rate_cross_off (bps)": self.rate_off_bps,
                "rate_cross_on_2 (bps)": self.rate_on2_bps,
                "cross_rate_on_2 (bps)": self.cross_rate_on2_bps,
                "buffer_drops": self.buffer_drops,
                "hypotheses": self.final_hypotheses,
            },
        )


@dataclass
class Figure3Result:
    """The full α sweep."""

    duration: float
    switch_interval: float
    link_rate_bps: float
    loss_rate: float
    per_alpha: list[Figure3AlphaResult] = field(default_factory=list)

    def rows(self) -> list[ExperimentRow]:
        """Summary rows, one per α."""
        return [result.row() for result in self.per_alpha]

    def series(self) -> dict[str, TimeSeries]:
        """The sequence-number traces, keyed by α label (Figure 3's curves)."""
        return {f"alpha={r.alpha:g}": r.sequence_series for r in self.per_alpha}

    # ------------------------------------------------------------- the claims

    def check_claims(self) -> dict[str, bool]:
        """Evaluate the paper's four qualitative claims on the measured data."""
        ordered = sorted(self.per_alpha, key=lambda r: r.alpha)
        claims: dict[str, bool] = {}

        # Claim 1: slow start under uncertainty — the early rate is below the
        # eventual cross-off rate for every α.
        claims["starts_slowly"] = all(
            result.rate_on1_bps <= result.rate_off_bps + 1e-9
            or result.rate_on1_bps < 0.6 * self.link_rate_bps
            for result in ordered
        )

        # Claim 2: with cross traffic off, deliveries approach the link speed
        # (less stochastic loss).  We require at least 60 % of the lossy
        # capacity for the non-deferential senders (alpha <= 1).
        lossy_capacity = self.link_rate_bps * (1.0 - self.loss_rate)
        claims["link_speed_when_cross_off"] = all(
            result.rate_off_bps >= 0.6 * lossy_capacity
            for result in ordered
            if result.alpha <= 1.0
        )

        # Claim 3: deference is monotone in alpha while cross traffic is on
        # (measured on total packets sent, the most robust statistic).  A 20 %
        # slack absorbs run-to-run noise on shortened scenarios; the extreme
        # alphas must still be strictly ordered.
        sent = [result.packets_sent for result in ordered]
        monotone_with_slack = all(
            earlier >= 0.8 * later for earlier, later in zip(sent, sent[1:])
        )
        extremes_ordered = sent[0] > sent[-1]
        claims["deference_monotone_in_alpha"] = monotone_with_slack and extremes_ordered

        # Claim 4: only alpha < 1 causes (meaningful) buffer overflow.
        claims["only_alpha_below_one_overflows"] = all(
            (result.buffer_drops >= 5) == (result.alpha < 1.0) for result in ordered
        )
        return claims


def run_figure3_point(
    alpha: float,
    duration: float = 300.0,
    switch_interval: float = 100.0,
    link_rate_bps: float = 12_000.0,
    cross_fraction: float = 0.7,
    loss_rate: float = 0.2,
    buffer_capacity_bits: float = 96_000.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
    seed: int = 1,
    settings: SenderSettings | SenderConfig | None = None,
    prior_points: tuple[int, int, int, int, int] = (4, 4, 3, 4, 1),
) -> Figure3AlphaResult:
    """Run one α point of the Figure-3 experiment.

    This is the unit the scenario runner parallelizes: a module-level
    function of picklable arguments whose result depends only on them, so
    a sweep computes the same numbers regardless of backend.

    ``settings`` is the sender calibration — canonically a
    :class:`repro.api.SenderConfig` (the deprecated ``SenderSettings`` is
    still accepted and adapted).
    """
    base = as_sender_config(settings)
    phase = switch_interval
    network = figure2_network(
        link_rate_bps=link_rate_bps,
        cross_fraction=cross_fraction,
        loss_rate=loss_rate,
        buffer_capacity_bits=buffer_capacity_bits,
        packet_bits=packet_bits,
        cross_gate="squarewave",
        switch_interval=switch_interval,
        seed=seed,
    )
    prior = figure3_prior(
        link_rate_points=prior_points[0],
        cross_fraction_points=prior_points[1],
        loss_points=prior_points[2],
        buffer_points=prior_points[3],
        fill_points=prior_points[4],
        packet_bits=packet_bits,
    )
    run_config = replace(base, alpha=alpha, packet_bits=packet_bits)
    sender = build_sender(run_config, network, prior=prior)
    network.network.run(until=duration)

    receiver = network.sender_receiver
    margin = min(20.0, phase / 5.0)
    rate_on1 = receiver.throughput_bps(margin, phase)
    rate_off = receiver.throughput_bps(phase + margin / 2.0, 2.0 * phase)
    rate_on2 = receiver.throughput_bps(2.0 * phase + margin / 2.0, min(3.0 * phase, duration))
    cross_on2 = network.cross_receiver.throughput_bps(
        2.0 * phase + margin / 2.0, min(3.0 * phase, duration), flow=network.cross_flow
    )
    return Figure3AlphaResult(
        alpha=alpha,
        sequence_series=TimeSeries.from_pairs(sender.sequence_series()),
        packets_sent=sender.packets_sent,
        packets_acked=sender.packets_acked,
        rate_on1_bps=rate_on1,
        rate_off_bps=rate_off,
        rate_on2_bps=rate_on2,
        cross_rate_on2_bps=cross_on2,
        buffer_drops=network.buffer.drop_count,
        cross_drops=sum(
            1 for packet in network.buffer.dropped_packets if packet.flow == network.cross_flow
        ),
        final_hypotheses=len(sender.belief),
        degenerate_updates=sender.belief.degenerate_updates,
    )


def run_figure3(
    alphas: Sequence[float] = (0.9, 1.0, 2.5, 5.0),
    duration: float = 300.0,
    switch_interval: float = 100.0,
    link_rate_bps: float = 12_000.0,
    cross_fraction: float = 0.7,
    loss_rate: float = 0.2,
    buffer_capacity_bits: float = 96_000.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
    seed: int = 1,
    settings: SenderSettings | SenderConfig | None = None,
    prior_points: tuple[int, int, int, int, int] = (4, 4, 3, 4, 1),
    runner: "RunnerBackend | None" = None,
) -> Figure3Result:
    """Run the Figure-3 experiment: :func:`run_figure3_point` once per α.

    Parameters
    ----------
    alphas:
        The cross-traffic priorities to sweep (the paper uses 0.9, 1, 2.5, 5).
    duration / switch_interval:
        Total simulated time and the cross-traffic on/off half-period.  The
        paper uses 300 s / 100 s; the benchmark uses a shortened version.
    prior_points:
        Grid resolution ``(link, cross fraction, loss, buffer, fill)`` of the
        sender's prior.  Coarse grids keep the ensemble small, as the paper
        notes is necessary for the rejection-sampling approach.
    settings:
        Sender calibration; canonically a :class:`repro.api.SenderConfig`
        (``SenderSettings`` still accepted), defaulting to the Figure-3
        calibration with the given α substituted per run.
    runner:
        Execution backend for the sweep — any object with
        ``map(fn, kwargs_list)`` such as
        :class:`repro.runner.backends.SerialRunner` (the default) or
        :class:`repro.runner.backends.ParallelRunner` to fan the α points
        out over worker processes.
    """
    if runner is None:
        runner = SerialRunner()
    tasks = [
        {
            "alpha": alpha,
            "duration": duration,
            "switch_interval": switch_interval,
            "link_rate_bps": link_rate_bps,
            "cross_fraction": cross_fraction,
            "loss_rate": loss_rate,
            "buffer_capacity_bits": buffer_capacity_bits,
            "packet_bits": packet_bits,
            "seed": seed,
            "settings": settings,
            "prior_points": prior_points,
        }
        for alpha in alphas
    ]
    result = Figure3Result(
        duration=duration,
        switch_interval=switch_interval,
        link_rate_bps=link_rate_bps,
        loss_rate=loss_rate,
    )
    result.per_alpha.extend(runner.map(run_figure3_point, tasks))
    return result
