"""The §4 prose scenarios: convergence to link speed, and draining the buffer.

Scenario A ("the sender reaches a predictable, ideal result in simple
configurations"): a single ISender connected to a queue drained by a
throughput-limited link, with the link speed and initial buffer occupancy
unknown.  The sender begins tentatively, infers the parameters, and then
sends at the link speed.

Scenario B: with cross traffic present and a utility function that
penalizes the latency the sender induces on other traffic, the sender
drains the (initially occupied) buffer before ramping up to the link speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.config import SenderConfig
from repro.api.sender import build_sender
from repro.core.utility import AlphaWeightedUtility, LatencyPenaltyUtility
from repro.experiments.common import SenderSettings, as_sender_config
from repro.inference.prior import single_link_prior
from repro.metrics.summary import ExperimentRow
from repro.metrics.timeseries import TimeSeries
from repro.topology.presets import single_link_network
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class ConvergenceResult:
    """Scenario A measurements."""

    true_link_rate_bps: float
    inferred_link_rate_bps: float
    early_rate_bps: float
    late_rate_bps: float
    sequence_series: TimeSeries
    packets_sent: int
    posterior_true_rate_probability: float

    @property
    def converged(self) -> bool:
        """Whether the late sending rate is within 15 % of the link speed."""
        return abs(self.late_rate_bps - self.true_link_rate_bps) <= 0.15 * self.true_link_rate_bps

    def rows(self) -> list[ExperimentRow]:
        return [
            ExperimentRow(
                label="scenario A (unknown link speed)",
                values={
                    "true_rate (bps)": self.true_link_rate_bps,
                    "inferred_rate (bps)": self.inferred_link_rate_bps,
                    "early_rate (bps)": self.early_rate_bps,
                    "late_rate (bps)": self.late_rate_bps,
                    "P(true rate)": self.posterior_true_rate_probability,
                },
            )
        ]


@dataclass
class DrainResult:
    """Scenario B measurements, with and without the latency penalty."""

    first_send_plain: float
    first_send_penalized: float
    queue_at_first_send_plain: float
    queue_at_first_send_penalized: float
    late_rate_plain_bps: float
    late_rate_penalized_bps: float
    initial_fill_bits: float
    drain_time: float

    @property
    def penalized_sender_waits_longer(self) -> bool:
        """Whether the latency-penalizing sender defers its ramp-up."""
        return self.first_send_penalized > self.first_send_plain + 1e-9

    def rows(self) -> list[ExperimentRow]:
        return [
            ExperimentRow(
                label="plain utility",
                values={
                    "first_send (s)": self.first_send_plain,
                    "queue_at_first_send (bits)": self.queue_at_first_send_plain,
                    "late_rate (bps)": self.late_rate_plain_bps,
                },
            ),
            ExperimentRow(
                label="latency-penalizing utility",
                values={
                    "first_send (s)": self.first_send_penalized,
                    "queue_at_first_send (bits)": self.queue_at_first_send_penalized,
                    "late_rate (bps)": self.late_rate_penalized_bps,
                },
            ),
        ]


def run_convergence_scenario(
    true_link_rate_bps: float = 12_000.0,
    duration: float = 90.0,
    buffer_capacity_bits: float = 96_000.0,
    initial_fill_bits: float = 0.0,
    link_rate_points: int = 5,
    packet_bits: float = DEFAULT_PACKET_BITS,
    seed: int = 3,
    settings: SenderSettings | SenderConfig | None = None,
) -> ConvergenceResult:
    """Scenario A: unknown link speed, converge to sending at the link speed."""
    config = as_sender_config(settings) if settings is not None else SenderConfig(alpha=0.0)
    network = single_link_network(
        link_rate_bps=true_link_rate_bps,
        buffer_capacity_bits=buffer_capacity_bits,
        buffer_initial_fill_bits=initial_fill_bits,
        packet_bits=packet_bits,
        seed=seed,
    )
    prior = single_link_prior(
        link_rate_low=true_link_rate_bps * 2.0 / 3.0,
        link_rate_high=true_link_rate_bps * 4.0 / 3.0,
        link_rate_points=link_rate_points,
        buffer_capacity_bits=buffer_capacity_bits,
        fill_points=3 if initial_fill_bits > 0 else 1,
        packet_bits=packet_bits,
    )
    sender = build_sender(config, network, prior=prior)
    network.network.run(until=duration)

    receiver = network.sender_receiver
    early_rate = receiver.throughput_bps(0.0, duration / 3.0)
    late_rate = receiver.throughput_bps(duration * 2.0 / 3.0, duration)
    marginal = sender.belief.posterior_marginal("link_rate_bps")
    true_probability = sum(
        probability
        for value, probability in marginal.items()
        if abs(value - true_link_rate_bps) < 1e-6
    )
    return ConvergenceResult(
        true_link_rate_bps=true_link_rate_bps,
        inferred_link_rate_bps=sender.belief.posterior_mean("link_rate_bps"),
        early_rate_bps=early_rate,
        late_rate_bps=late_rate,
        sequence_series=TimeSeries.from_pairs(sender.sequence_series()),
        packets_sent=sender.packets_sent,
        posterior_true_rate_probability=true_probability,
    )


def run_drain_scenario(
    true_link_rate_bps: float = 12_000.0,
    duration: float = 60.0,
    buffer_capacity_bits: float = 96_000.0,
    initial_fill_bits: float = 48_000.0,
    cross_fraction: float = 0.3,
    latency_penalty: float = 0.1,
    packet_bits: float = DEFAULT_PACKET_BITS,
    seed: int = 3,
) -> DrainResult:
    """Scenario B: the latency-penalizing sender waits for the buffer to drain."""
    results = {}
    for label, utility in (
        ("plain", AlphaWeightedUtility(alpha=1.0, discount_timescale=20.0)),
        (
            "penalized",
            LatencyPenaltyUtility(
                alpha=1.0, discount_timescale=20.0, latency_penalty=latency_penalty
            ),
        ),
    ):
        network = single_link_network(
            link_rate_bps=true_link_rate_bps,
            buffer_capacity_bits=buffer_capacity_bits,
            buffer_initial_fill_bits=initial_fill_bits,
            cross_rate_pps=cross_fraction * true_link_rate_bps / packet_bits,
            packet_bits=packet_bits,
            seed=seed,
        )
        prior = single_link_prior(
            link_rate_low=true_link_rate_bps,
            link_rate_high=true_link_rate_bps,
            link_rate_points=1,
            buffer_capacity_bits=buffer_capacity_bits,
            fill_points=3,
            cross_rate_pps=cross_fraction * true_link_rate_bps / packet_bits,
            packet_bits=packet_bits,
        )
        sender = build_sender(SenderConfig(alpha=1.0), network, prior=prior, utility=utility)
        network.network.run(until=duration)
        first_send = sender.sent[0].sent_at if sender.sent else duration
        # Queue occupancy seen by the first transmission, according to the
        # sender's MAP hypothesis at that time is not recorded, so report the
        # ground-truth occupancy of the real buffer instead.
        queue_at_first = max(0.0, initial_fill_bits - true_link_rate_bps * first_send)
        late_rate = network.sender_receiver.throughput_bps(duration * 2.0 / 3.0, duration)
        results[label] = (first_send, queue_at_first, late_rate)

    drain_time = initial_fill_bits / true_link_rate_bps
    return DrainResult(
        first_send_plain=results["plain"][0],
        first_send_penalized=results["penalized"][0],
        queue_at_first_send_plain=results["plain"][1],
        queue_at_first_send_penalized=results["penalized"][1],
        late_rate_plain_bps=results["plain"][2],
        late_rate_penalized_bps=results["penalized"][2],
        initial_fill_bits=initial_fill_bits,
        drain_time=drain_time,
    )
