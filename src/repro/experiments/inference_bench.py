"""The inference-engine hot-path benchmark: scalar vs. vectorized backends.

Drives a :class:`~repro.inference.belief.BeliefState` at the full
512-hypothesis cap through a deterministic send/acknowledge workload — the
exact sequence of ``record_send`` / ``update`` calls an ISender issues,
minus the planner — once per backend, and reports wall time, the speedup
ratio, and how closely the two posteriors agree.

The workload is generated (no RNG) from a ground-truth
:class:`~repro.inference.linkmodel.LinkModel`: packets are sent on a fixed
cadence, their true delivery times become the acknowledgements, and updates
fire on an ISender-like cadence.  Because the prior contains gate
uncertainty (``mean_time_to_switch`` is set), every update forks the
ensemble and exercises evolve/score/compact/prune at the cap — the
dominant cost in every experiment.

Used by ``benchmarks/bench_ablation_inference.py`` (which also writes the
``BENCH_inference.json`` regression record) and runnable standalone::

    PYTHONPATH=src python -m repro.experiments.inference_bench
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.inference import AckObservation, BeliefState, GaussianKernel, figure3_prior
from repro.inference.linkmodel import LinkModel, LinkModelParams
from repro.units import DEFAULT_PACKET_BITS

#: Workload event kinds.
SEND = "send"
UPDATE = "update"


@dataclass(frozen=True)
class InferenceBenchConfig:
    """Shape of the belief-update workload."""

    max_hypotheses: int = 512
    duration: float = 25.0
    update_interval: float = 1.0
    send_interval: float = 0.5
    packet_bits: float = DEFAULT_PACKET_BITS
    true_link_rate_bps: float = 12_000.0
    true_cross_rate_pps: float = 0.35
    kernel_sigma: float = 0.4
    # Prior resolution chosen so the grid holds 512 configurations: every
    # update forks the gate and prunes back down to the cap.
    link_rate_points: int = 8
    cross_fraction_points: int = 4
    loss_points: int = 4
    buffer_points: int = 2
    fill_points: int = 2


@dataclass
class BackendRunResult:
    """Measurements from driving one backend through the workload."""

    backend: str
    wall_time_s: float
    updates_applied: int
    final_hypotheses: int
    compacted_away: int
    degenerate_updates: int
    weights: list[float] = field(default_factory=list)
    link_rate_marginal: dict[float, float] = field(default_factory=dict)
    map_link_rate_bps: float = 0.0


@dataclass
class BackendComparison:
    """Both backends on the identical workload, plus agreement metrics."""

    config: InferenceBenchConfig
    scalar: BackendRunResult
    vectorized: BackendRunResult

    @property
    def speedup(self) -> float:
        return self.scalar.wall_time_s / self.vectorized.wall_time_s

    @property
    def max_weight_divergence(self) -> float:
        """Largest absolute posterior-weight difference between backends."""
        if len(self.scalar.weights) != len(self.vectorized.weights):
            return float("inf")
        return max(
            (abs(a - b) for a, b in zip(self.scalar.weights, self.vectorized.weights)),
            default=0.0,
        )

    @property
    def posteriors_match(self) -> bool:
        """Documented-tolerance agreement (1e-9 absolute on weights)."""
        return (
            len(self.scalar.weights) == len(self.vectorized.weights)
            and self.max_weight_divergence <= 1e-9
            and self.scalar.map_link_rate_bps == self.vectorized.map_link_rate_bps
        )


def build_workload(config: InferenceBenchConfig) -> list[tuple[str, tuple]]:
    """The deterministic send/update event list both backends replay."""
    truth = LinkModel(
        LinkModelParams(
            link_rate_bps=config.true_link_rate_bps,
            buffer_capacity_bits=96_000.0,
            loss_rate=0.0,
            cross_rate_pps=config.true_cross_rate_pps,
            cross_packet_bits=config.packet_bits,
            mean_time_to_switch=None,
        ),
        start_time=0.0,
    )
    sends: list[tuple[int, float]] = []
    seq, at = 0, 0.0
    while at < config.duration:
        truth.send_own(seq, config.packet_bits, at)
        sends.append((seq, at))
        seq += 1
        at += config.send_interval
    truth.advance(config.duration + 60.0)
    ack_times = sorted(
        (prediction.time, prediction.seq)
        for prediction in truth.predictions.values()
        if prediction.delivered
    )

    events: list[tuple[str, tuple]] = []
    now = 0.0
    while now < config.duration:
        horizon = now + config.update_interval
        for packet_seq, sent_at in sends:
            if now <= sent_at < horizon:
                events.append((SEND, (packet_seq, config.packet_bits, sent_at)))
        acks = tuple(
            AckObservation(seq=packet_seq, received_at=received, ack_at=received)
            for received, packet_seq in ack_times
            if now < received <= horizon
        )
        events.append((UPDATE, (horizon, acks)))
        now = horizon
    return events


def run_backend(
    backend: str,
    config: InferenceBenchConfig | None = None,
    events: list[tuple[str, tuple]] | None = None,
) -> BackendRunResult:
    """Replay the workload through one backend and measure the hot path."""
    config = config or InferenceBenchConfig()
    if events is None:
        events = build_workload(config)
    prior = figure3_prior(
        link_rate_points=config.link_rate_points,
        cross_fraction_points=config.cross_fraction_points,
        loss_points=config.loss_points,
        buffer_points=config.buffer_points,
        fill_points=config.fill_points,
        packet_bits=config.packet_bits,
    )
    belief = BeliefState.from_prior(
        prior,
        kernel=GaussianKernel(sigma=config.kernel_sigma),
        max_hypotheses=config.max_hypotheses,
        backend=backend,
    )
    started = time.perf_counter()
    for kind, args in events:
        if kind == SEND:
            belief.record_send(*args)
        else:
            belief.update(*args)
    elapsed = time.perf_counter() - started
    return BackendRunResult(
        backend=backend,
        wall_time_s=elapsed,
        updates_applied=belief.updates_applied,
        final_hypotheses=len(belief),
        compacted_away=belief.compacted_away,
        degenerate_updates=belief.degenerate_updates,
        weights=belief.weights,
        link_rate_marginal=belief.posterior_marginal("link_rate_bps"),
        map_link_rate_bps=float(belief.map_estimate().params["link_rate_bps"]),
    )


def run_backend_comparison(
    config: InferenceBenchConfig | None = None, rounds: int = 2
) -> BackendComparison:
    """Measure both backends on one workload; keeps each backend's best round.

    ``rounds`` > 1 absorbs scheduler noise: the *minimum* wall time per
    backend is the robust estimate of its cost (results are identical
    across rounds by construction, so only timing varies).
    """
    config = config or InferenceBenchConfig()
    events = build_workload(config)
    best: dict[str, BackendRunResult] = {}
    for _ in range(max(1, rounds)):
        for backend in ("vectorized", "scalar"):
            result = run_backend(backend, config, events)
            kept = best.get(backend)
            if kept is None or result.wall_time_s < kept.wall_time_s:
                best[backend] = result
    return BackendComparison(
        config=config, scalar=best["scalar"], vectorized=best["vectorized"]
    )


def main() -> None:  # pragma: no cover - manual entry point
    comparison = run_backend_comparison()
    scalar, vectorized = comparison.scalar, comparison.vectorized
    print(
        f"scalar     : {scalar.wall_time_s:8.3f} s "
        f"({scalar.final_hypotheses} hypotheses, {scalar.updates_applied} updates)"
    )
    print(
        f"vectorized : {vectorized.wall_time_s:8.3f} s "
        f"({vectorized.final_hypotheses} hypotheses, {vectorized.updates_applied} updates)"
    )
    print(f"speedup    : {comparison.speedup:8.1f} x")
    print(f"max |Δw|   : {comparison.max_weight_divergence:8.2e}")


if __name__ == "__main__":  # pragma: no cover
    main()
