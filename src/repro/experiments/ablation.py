"""Ablations over the inference engine's approximation knobs.

The paper points out that plain rejection sampling is computationally
limited and that a deployable sender would use approximate Bayesian
techniques.  DESIGN.md therefore calls out the approximation knobs this
implementation exposes — the likelihood kernel, the ensemble-size cap, and
decision memoization — and this module measures what each one costs or buys
on a shortened Figure-3-style scenario: wall-clock time, number of planner
rollouts, whether the sender still identifies the true link speed, and the
posterior probability mass it places on that true value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import AlphaWeightedUtility, ExpectedUtilityPlanner, ISender
from repro.inference import BeliefState, ExactMatchKernel, GaussianKernel, figure3_prior
from repro.metrics.summary import ExperimentRow
from repro.runner.backends import RunnerBackend, SerialRunner
from repro.topology.presets import figure2_network
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class AblationConfig:
    """One configuration of the inference/planning approximations."""

    label: str
    kernel: str = "gaussian"  # "gaussian" or "exact"
    kernel_scale: float = 0.4
    max_hypotheses: int = 200
    top_k: int = 16
    use_policy_cache: bool = False
    backend: str = "scalar"  # "scalar" or "vectorized" belief engine
    rollout_backend: str = "scalar"  # "scalar" or "vectorized" planner fan-out


@dataclass
class AblationOutcome:
    """Measurements for one configuration."""

    config: AblationConfig
    wall_time: float
    packets_sent: int
    goodput_bps: float
    rollouts: int
    final_hypotheses: int
    degenerate_updates: int
    posterior_true_link_rate: float

    def row(self) -> ExperimentRow:
        return ExperimentRow(
            label=self.config.label,
            values={
                "wall_time (s)": self.wall_time,
                "goodput (bps)": self.goodput_bps,
                "sent": self.packets_sent,
                "rollouts": self.rollouts,
                "hypotheses": self.final_hypotheses,
                "degenerate": self.degenerate_updates,
                "P(true link rate)": self.posterior_true_link_rate,
            },
        )


@dataclass
class AblationResult:
    """All configurations, ready to print."""

    duration: float
    outcomes: list[AblationOutcome] = field(default_factory=list)

    def rows(self) -> list[ExperimentRow]:
        return [outcome.row() for outcome in self.outcomes]


DEFAULT_CONFIGS = (
    AblationConfig(label="gaussian kernel / 200 hyps"),
    AblationConfig(label="gaussian kernel / 50 hyps", max_hypotheses=50, top_k=8),
    AblationConfig(label="exact (rejection) kernel", kernel="exact", kernel_scale=0.75),
    AblationConfig(label="policy cache", use_policy_cache=True),
)


def run_ablation_config(
    config: AblationConfig,
    duration: float = 60.0,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    loss_rate: float = 0.2,
    alpha: float = 1.0,
    seed: int = 2,
    packet_bits: float = DEFAULT_PACKET_BITS,
) -> AblationOutcome:
    """Run the shortened Figure-3 scenario under one approximation config.

    Module-level and picklable so the ablation sweep can run through any
    scenario-runner backend.
    """
    network = figure2_network(
        link_rate_bps=link_rate_bps,
        loss_rate=loss_rate,
        switch_interval=switch_interval,
        packet_bits=packet_bits,
        seed=seed,
    )
    prior = figure3_prior(
        link_rate_points=4,
        cross_fraction_points=4,
        loss_points=3,
        buffer_points=2,
        fill_points=1,
        packet_bits=packet_bits,
    )
    if config.kernel == "exact":
        kernel = ExactMatchKernel(tolerance=config.kernel_scale)
    else:
        kernel = GaussianKernel(sigma=config.kernel_scale)
    belief = BeliefState.from_prior(
        prior,
        kernel=kernel,
        max_hypotheses=config.max_hypotheses,
        backend=config.backend,
    )
    planner = ExpectedUtilityPlanner(
        AlphaWeightedUtility(alpha=alpha, discount_timescale=20.0),
        packet_bits=packet_bits,
        top_k=config.top_k,
        rollout_backend=config.rollout_backend,
    )
    sender = ISender(
        belief,
        planner,
        network.sender_receiver,
        packet_bits=packet_bits,
        use_policy_cache=config.use_policy_cache,
    )
    sender.connect(network.entry)
    network.network.add(sender)

    started = time.perf_counter()
    network.network.run(until=duration)
    elapsed = time.perf_counter() - started

    marginal = belief.posterior_marginal("link_rate_bps")
    true_mass = sum(
        probability
        for value, probability in marginal.items()
        if abs(value - link_rate_bps) < 1e-6
    )
    return AblationOutcome(
        config=config,
        wall_time=elapsed,
        packets_sent=sender.packets_sent,
        goodput_bps=network.sender_receiver.throughput_bps(0.0, duration),
        rollouts=planner.rollouts_performed,
        final_hypotheses=len(belief),
        degenerate_updates=belief.degenerate_updates,
        posterior_true_link_rate=true_mass,
    )


def run_inference_ablation(
    configs: tuple[AblationConfig, ...] = DEFAULT_CONFIGS,
    duration: float = 60.0,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    loss_rate: float = 0.2,
    alpha: float = 1.0,
    seed: int = 2,
    packet_bits: float = DEFAULT_PACKET_BITS,
    runner: RunnerBackend | None = None,
) -> AblationResult:
    """Run the shortened Figure-3 scenario once per ablation configuration.

    ``runner`` selects the sweep's execution backend (serial by default;
    pass a :class:`~repro.runner.backends.ParallelRunner` to fan the
    configurations out over workers).
    """
    if runner is None:
        runner = SerialRunner()
    tasks = [
        {
            "config": config,
            "duration": duration,
            "switch_interval": switch_interval,
            "link_rate_bps": link_rate_bps,
            "loss_rate": loss_rate,
            "alpha": alpha,
            "seed": seed,
            "packet_bits": packet_bits,
        }
        for config in configs
    ]
    result = AblationResult(duration=duration)
    result.outcomes.extend(runner.map(run_ablation_config, tasks))
    return result
