"""Ablations over the inference engine's approximation knobs.

The paper points out that plain rejection sampling is computationally
limited and that a deployable sender would use approximate Bayesian
techniques.  DESIGN.md therefore calls out the approximation knobs this
implementation exposes — the likelihood kernel, the ensemble-size cap, and
decision memoization — and this module measures what each one costs or buys
on a shortened Figure-3-style scenario: wall-clock time, number of planner
rollouts, whether the sender still identifies the true link speed, and the
posterior probability mass it places on that true value.

Configurations are named :class:`~repro.api.config.SenderConfig` points
(:class:`AblationPoint`); the older :class:`AblationConfig` survives as a
deprecated adapter that constructs one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro._deprecation import warn_deprecated
from repro._persist import default_cache_dir
from repro.api.config import SenderConfig
from repro.api.policy import load_or_precompute_policy_table
from repro.api.sender import build_sender
from repro.inference import figure3_prior
from repro.metrics.summary import ExperimentRow
from repro.runner.backends import RunnerBackend, SerialRunner
from repro.topology.presets import figure2_network


@dataclass(frozen=True)
class AblationPoint:
    """One named configuration of the inference/planning approximations."""

    label: str
    config: SenderConfig


@dataclass
class AblationConfig:
    """Deprecated: use :class:`AblationPoint` with a ``SenderConfig``.

    Kept as a field-compatible adapter; construction warns and
    :meth:`to_point` produces the canonical representation (the sweep
    itself always runs through :func:`repro.api.build_sender`).
    """

    label: str
    kernel: str = "gaussian"  # "gaussian" or "exact"
    kernel_scale: float = 0.4
    max_hypotheses: int = 200
    top_k: int = 16
    use_policy_cache: bool = False
    backend: str = "scalar"  # "scalar" or "vectorized" belief engine
    rollout_backend: str = "scalar"  # "scalar" or "vectorized" planner fan-out

    def __post_init__(self) -> None:
        warn_deprecated(
            "AblationConfig is deprecated; construct an AblationPoint with a "
            "repro.api.SenderConfig instead",
            internal_files=(__file__,),
        )

    def to_point(self, alpha: float = 1.0) -> AblationPoint:
        """The canonical :class:`AblationPoint` equivalent."""
        return AblationPoint(
            label=self.label,
            config=SenderConfig(
                alpha=alpha,
                discount_timescale=20.0,
                kernel=self.kernel,
                kernel_scale=self.kernel_scale,
                max_hypotheses=self.max_hypotheses,
                top_k=self.top_k,
                belief_backend=self.backend,
                rollout_backend=self.rollout_backend,
                policy="cache" if self.use_policy_cache else "none",
            ),
        )


def _as_point(config: "AblationPoint | AblationConfig | tuple") -> AblationPoint:
    """Normalize sweep inputs: AblationPoint, deprecated AblationConfig, or
    a bare ``(label, SenderConfig)`` pair."""
    if isinstance(config, AblationPoint):
        return config
    if isinstance(config, AblationConfig):
        return config.to_point()
    label, sender_config = config
    return AblationPoint(label=label, config=sender_config)


@dataclass
class AblationOutcome:
    """Measurements for one configuration."""

    config: AblationPoint
    wall_time: float
    packets_sent: int
    goodput_bps: float
    rollouts: int
    final_hypotheses: int
    degenerate_updates: int
    posterior_true_link_rate: float
    policy_hits: int = 0
    policy_misses: int = 0

    @property
    def label(self) -> str:
        return self.config.label

    def row(self) -> ExperimentRow:
        return ExperimentRow(
            label=self.config.label,
            values={
                "wall_time (s)": self.wall_time,
                "goodput (bps)": self.goodput_bps,
                "sent": self.packets_sent,
                "rollouts": self.rollouts,
                "hypotheses": self.final_hypotheses,
                "degenerate": self.degenerate_updates,
                "P(true link rate)": self.posterior_true_link_rate,
            },
        )


@dataclass
class AblationResult:
    """All configurations, ready to print."""

    duration: float
    outcomes: list[AblationOutcome] = field(default_factory=list)

    def rows(self) -> list[ExperimentRow]:
        return [outcome.row() for outcome in self.outcomes]


#: Held-out pilot seed for policy-table precompute: fixed (not derived from
#: the measured seed) so a grid sweep's seed trials share one table, and far
#: outside the small integers experiments use as measured seeds.
_PILOT_SEED = 1_000_003

DEFAULT_CONFIGS: tuple[AblationPoint, ...] = (
    AblationPoint("gaussian kernel / 200 hyps", SenderConfig()),
    AblationPoint(
        "gaussian kernel / 50 hyps", SenderConfig(max_hypotheses=50, top_k=8)
    ),
    AblationPoint(
        "exact (rejection) kernel", SenderConfig(kernel="exact", kernel_scale=0.75)
    ),
    AblationPoint("policy cache", SenderConfig(policy="cache")),
)


def run_ablation_point(
    label: str,
    config: SenderConfig,
    duration: float = 60.0,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    loss_rate: float = 0.2,
    seed: int = 2,
    packet_bits: float | None = None,
) -> AblationOutcome:
    """Run the shortened Figure-3 scenario under one sender configuration.

    Module-level and picklable so the ablation sweep can run through any
    scenario-runner backend; the sender is built through the canonical
    :func:`repro.api.build_sender` path.  ``packet_bits`` sizes the
    network's packets and, when given, overrides the config's; ``None``
    (the default) respects ``config.packet_bits``.

    With ``policy="table"`` the policy table is precomputed on *this
    scenario's* parameters (same link rate / loss / switching, a disjoint
    pilot seed) before the measured run starts — precomputation is the
    §3.3 offline step, so its cost is deliberately outside ``wall_time``.
    """
    if packet_bits is None:
        packet_bits = config.packet_bits
    else:
        config = replace(config, packet_bits=packet_bits)
    network = figure2_network(
        link_rate_bps=link_rate_bps,
        loss_rate=loss_rate,
        switch_interval=switch_interval,
        packet_bits=packet_bits,
        seed=seed,
    )
    prior = figure3_prior(
        link_rate_points=4,
        cross_fraction_points=4,
        loss_points=3,
        buffer_points=2,
        fill_points=1,
        packet_bits=packet_bits,
    )
    policy_table = None
    if config.policy == "table":
        # Tables are shared across runs and sweep workers through the
        # configured cache directory ($REPRO_CACHE_DIR / CLI --cache-dir):
        # a grid sweep precomputes each distinct (config, pilot-scenario)
        # pair once instead of per point.  The pilot seed is a fixed
        # held-out value rather than an offset of the measured seed, so a
        # seed fan over one configuration shares a single table.
        pilot_seed = _PILOT_SEED if seed != _PILOT_SEED else _PILOT_SEED + 1
        policy_table = load_or_precompute_policy_table(
            config,
            prior,
            cache_dir=default_cache_dir(),
            pilot_duration=duration,
            seed=pilot_seed,
            switch_interval=switch_interval,
            link_rate_bps=link_rate_bps,
            loss_rate=loss_rate,
        )
        # A freshly precomputed table still carries its pilot run's
        # hit/miss traffic while a cache-loaded one starts at zero; reset
        # so the reported counters measure the *measured* run only and the
        # outcome stays a pure function of the config and seed, whatever
        # the cache state.
        policy_table.hits = policy_table.misses = 0
    sender = build_sender(config, network, prior=prior, policy_table=policy_table)

    started = time.perf_counter()
    network.network.run(until=duration)
    elapsed = time.perf_counter() - started

    belief = sender.belief
    marginal = belief.posterior_marginal("link_rate_bps")
    true_mass = sum(
        probability
        for value, probability in marginal.items()
        if abs(value - link_rate_bps) < 1e-6
    )
    return AblationOutcome(
        config=AblationPoint(label=label, config=config),
        wall_time=elapsed,
        packets_sent=sender.packets_sent,
        goodput_bps=network.sender_receiver.throughput_bps(0.0, duration),
        rollouts=sender.planner.rollouts_performed,
        final_hypotheses=len(belief),
        degenerate_updates=belief.degenerate_updates,
        posterior_true_link_rate=true_mass,
        policy_hits=getattr(sender.policy, "hits", 0),
        policy_misses=getattr(sender.policy, "misses", 0),
    )


def run_ablation_config(
    config: "AblationConfig | AblationPoint",
    duration: float = 60.0,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    loss_rate: float = 0.2,
    alpha: float | None = None,
    seed: int = 2,
    packet_bits: float | None = None,
) -> AblationOutcome:
    """Deprecated-compatible wrapper over :func:`run_ablation_point`.

    ``alpha`` keeps the old sweep-level semantics: when given, it
    overrides the point's configured α (an :class:`AblationConfig` has no
    α of its own, so it defaults to the old 1.0 there).
    """
    if isinstance(config, AblationConfig):
        point = config.to_point(alpha=alpha if alpha is not None else 1.0)
    elif alpha is not None:
        point = AblationPoint(config.label, replace(config.config, alpha=alpha))
    else:
        point = config
    return run_ablation_point(
        point.label,
        point.config,
        duration=duration,
        switch_interval=switch_interval,
        link_rate_bps=link_rate_bps,
        loss_rate=loss_rate,
        seed=seed,
        packet_bits=packet_bits,
    )


def run_inference_ablation(
    configs: Sequence["AblationPoint | AblationConfig | tuple"] = DEFAULT_CONFIGS,
    duration: float = 60.0,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    loss_rate: float = 0.2,
    alpha: float | None = None,
    seed: int = 2,
    packet_bits: float | None = None,
    runner: RunnerBackend | None = None,
) -> AblationResult:
    """Run the shortened Figure-3 scenario once per ablation configuration.

    ``configs`` items are :class:`AblationPoint` (or ``(label,
    SenderConfig)`` pairs; deprecated :class:`AblationConfig` objects are
    adapted).  ``alpha`` keeps the old sweep-level semantics: when given,
    it overrides every point's configured α (deprecated
    :class:`AblationConfig` items, which carry no α, get it either way —
    1.0 when unset, as before).  ``runner`` selects the sweep's execution
    backend (serial by default; pass a
    :class:`~repro.runner.backends.ParallelRunner` to fan the
    configurations out over workers).
    """
    if runner is None:
        runner = SerialRunner()
    points = []
    for config in configs:
        point = _as_point(config)
        if alpha is not None:
            point = AblationPoint(point.label, replace(point.config, alpha=alpha))
        points.append(point)
    tasks = [
        {
            "label": point.label,
            "config": point.config,
            "duration": duration,
            "switch_interval": switch_interval,
            "link_rate_bps": link_rate_bps,
            "loss_rate": loss_rate,
            "seed": seed,
            "packet_bits": packet_bits,
        }
        for point in points
    ]
    result = AblationResult(duration=duration)
    result.outcomes.extend(runner.map(run_ablation_point, tasks))
    return result
