"""Benchmarks for the fused wake-up kernel and the batched sender pool.

Two measurements back the fused engine's perf bar:

* **Single-sender wake-up** — the full ISender wake-up loop body
  (``record_send`` → ``update`` → ``decide``) on a belief at the
  512-hypothesis cap, fused vs unfused-vectorized, in the paper's
  deep-buffer regime: a bufferbloat-scale queue (tens of packets standing
  per hypothesis) with sparse cross traffic.  This is where the fusion
  pays: the fused belief replaces the per-row Python dict compaction with
  one ``np.unique`` grouping, the fused decide skips the ``RolloutLanes``
  repack by aliasing ensemble rows straight into the rollout frontier, and
  — the big one — the fused frontier *drains* back-to-back service
  completions in a single pass, so a deep queue costs a handful of
  frontier iterations instead of one per departure.
* **Aggregate 64-sender decide** — one
  :meth:`~repro.api.pool.BatchedSenderPool.decide_all` advancing all
  (sender × action × hypothesis) lanes through a single pooled frontier,
  vs the per-sender loop of unfused vectorized decides the many-flow
  scenario used to run.

Both comparisons hold the decision semantics fixed: the fused results must
match the unfused ones (bit-identical posteriors; identical chosen actions;
1e-9-rel utilities), so the timed speedup is pure execution, not changed
work.

Used by ``benchmarks/bench_fused_wakeup.py`` (which extends the
``BENCH_planner.json`` / ``BENCH_engine.json`` regression records) and
runnable standalone::

    PYTHONPATH=src python -m repro.experiments.fused_bench
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.config import SenderConfig
from repro.api.pool import BatchedSenderPool
from repro.api.sender import SenderParts, build_components
from repro.core import AlphaWeightedUtility, ExpectedUtilityPlanner
from repro.experiments.inference_bench import (
    SEND,
    InferenceBenchConfig,
    build_workload,
)
from repro.inference import (
    AckObservation,
    BeliefState,
    GaussianKernel,
    figure3_prior,
    single_link_prior,
)
from repro.units import DEFAULT_PACKET_BITS

#: Sequence-number base for bench-issued sends, clear of every warm-up seq.
_BENCH_SEQ_BASE = 2_000_000


# ------------------------------------------------------------ fused wake-up


@dataclass(frozen=True)
class FusedWakeupConfig:
    """Shape of the deep-buffer wake-up state and the timed loop.

    The state mirrors :class:`~repro.experiments.planner_bench.
    PlannerBenchConfig` — a belief at the 512-hypothesis cap, converged on
    a Figure-3-style workload — but moves the regime from the planner
    bench's shallow §4 buffers (72–108 kbit, ~1:1 service/cross
    alternation) to the bufferbloat regime the paper opens with: buffers
    deep enough to hold the whole send burst (tens of packets standing in
    every hypothesis's queue) and sparse cross traffic.  There the rollout
    frontier is dominated by long runs of back-to-back departures, which
    the fused kernel drains in one pass per run instead of one masked
    iteration per packet.
    """

    top_k: int = 24
    max_hypotheses: int = 512
    #: Warm-up workload (shared with the inference bench machinery).
    duration: float = 12.0
    update_interval: float = 1.0
    send_interval: float = 0.5
    packet_bits: float = DEFAULT_PACKET_BITS
    true_link_rate_bps: float = 12_000.0
    true_cross_fraction: float = 0.03
    kernel_sigma: float = 0.4
    #: Send burst queued at the decision time: 128 × 8 kbit ≈ 1 Mbit of
    #: standing queue — the bufferbloat depth the fused drain targets
    #: (still shallow next to the paper's measured multi-second buffers).
    burst: int = 128
    #: Prior resolution: narrow on the (identified) link speed, near-zero
    #: cross traffic (the Figure-2 single-flow regime — the standing queue
    #: is self-inflicted), wide on loss/buffer/fill — 2*2*8*4*2 = 512.
    link_rate_low: float = 11_000.0
    link_rate_high: float = 13_000.0
    link_rate_points: int = 2
    cross_fraction_low: float = 0.0
    cross_fraction_high: float = 0.06
    cross_fraction_points: int = 2
    loss_points: int = 8
    #: Deep buffers: 1.15–1.3 Mbit (~145–160 packets) hold the full burst.
    buffer_low: float = 1_150_000.0
    buffer_high: float = 1_300_000.0
    buffer_points: int = 4
    fill_points: int = 2
    #: Timed wake-ups per round, and the wall-clock step between them.
    decisions: int = 12
    wake_interval: float = 0.05

    @property
    def alpha_utility(self) -> AlphaWeightedUtility:
        """The Figure-3 utility used for every timed decision."""
        return AlphaWeightedUtility(alpha=1.0, discount_timescale=20.0)


def build_wakeup_state(config: FusedWakeupConfig, belief_backend: str) -> BeliefState:
    """A belief at the cap carrying a bufferbloat-deep queued burst."""
    workload = InferenceBenchConfig(
        max_hypotheses=config.max_hypotheses,
        duration=config.duration,
        update_interval=config.update_interval,
        send_interval=config.send_interval,
        packet_bits=config.packet_bits,
        true_link_rate_bps=config.true_link_rate_bps,
        true_cross_rate_pps=(
            config.true_cross_fraction * config.true_link_rate_bps / config.packet_bits
        ),
        kernel_sigma=config.kernel_sigma,
    )
    prior = figure3_prior(
        link_rate_low=config.link_rate_low,
        link_rate_high=config.link_rate_high,
        link_rate_points=config.link_rate_points,
        cross_fraction_low=config.cross_fraction_low,
        cross_fraction_high=config.cross_fraction_high,
        cross_fraction_points=config.cross_fraction_points,
        loss_points=config.loss_points,
        buffer_low=config.buffer_low,
        buffer_high=config.buffer_high,
        buffer_points=config.buffer_points,
        fill_points=config.fill_points,
        packet_bits=config.packet_bits,
    )
    belief = BeliefState.from_prior(
        prior,
        kernel=GaussianKernel(sigma=config.kernel_sigma),
        max_hypotheses=config.max_hypotheses,
        backend=belief_backend,
    )
    for kind, args in build_workload(workload):
        if kind == SEND:
            belief.record_send(*args)
        else:
            belief.update(*args)
    burst_base = 1_000_000  # clear of every warm-up sequence number
    for index in range(config.burst):
        belief.record_send(burst_base + index, config.packet_bits, config.duration)
    belief.update(config.duration)
    return belief


@dataclass
class WakeupBackendResult:
    """Measurements from timing one backend's full wake-up loop body."""

    backend: str
    wall_time_s: float
    wakeups: int
    chosen_delay: float
    expected_utilities: dict[float, float] = field(default_factory=dict)


@dataclass
class FusedWakeupComparison:
    """Fused vs unfused-vectorized full wake-ups on identical state."""

    config: FusedWakeupConfig
    vectorized: WakeupBackendResult
    fused: WakeupBackendResult

    @property
    def speedup(self) -> float:
        return self.vectorized.wall_time_s / self.fused.wall_time_s

    @property
    def max_utility_divergence(self) -> float:
        """Largest relative expected-utility difference across the grid."""
        unfused = self.vectorized.expected_utilities
        fused = self.fused.expected_utilities
        if set(unfused) != set(fused):
            return float("inf")
        worst = 0.0
        for delay, value in unfused.items():
            scale = max(1.0, abs(value))
            worst = max(worst, abs(fused[delay] - value) / scale)
        return worst

    @property
    def decisions_match(self) -> bool:
        return self.fused.chosen_delay == self.vectorized.chosen_delay


def _time_wakeups(
    backend: str,
    belief,
    config: FusedWakeupConfig,
    seq_base: int,
    start: float,
) -> WakeupBackendResult:
    """Time ``config.decisions`` full wake-ups through one engine.

    Each iteration advances the clock by ``config.wake_interval`` and runs
    the ISender wake-up body — ``record_send`` (one new outstanding
    packet), ``update`` (the full fork/advance/score/compact/prune pipeline
    over the capped ensemble), ``decide`` (the top-k × action-grid rollout
    fan-out) — so the measurement covers exactly what one sender pays per
    wake, not the decide in isolation.  The advancing clock matters: a wake
    at a frozen ``now`` never forks or compacts, which would idle the very
    stages the fused engine rebuilds.
    """
    planner = ExpectedUtilityPlanner(
        config.alpha_utility,
        packet_bits=config.packet_bits,
        top_k=config.top_k,
        rollout_backend=backend,
    )
    # One untimed wake warms caches and allocators; it mutates the belief,
    # but every backend replays the identical script, so the states stay
    # paired (``seq_base`` reserves index 0 for this warm wake).
    now = start + config.wake_interval
    belief.record_send(seq_base, config.packet_bits, now)
    belief.update(now)
    decision = planner.decide(belief, now)
    started = time.perf_counter()
    for index in range(1, config.decisions + 1):
        now += config.wake_interval
        belief.record_send(seq_base + index, config.packet_bits, now)
        belief.update(now)
        decision = planner.decide(belief, now)
    elapsed = time.perf_counter() - started
    return WakeupBackendResult(
        backend=backend,
        wall_time_s=elapsed,
        wakeups=config.decisions,
        chosen_delay=decision.delay,
        expected_utilities=dict(decision.expected_utilities),
    )


def run_fused_wakeup_comparison(
    config: FusedWakeupConfig | None = None, rounds: int = 3
) -> FusedWakeupComparison:
    """Time fused vs unfused full wake-ups; keep each backend's best round.

    Each backend runs over its own belief built from the identical warm-up
    workload (bit-identical posteriors by the fused backend's contract),
    and every round applies the same send/update/decide script to both —
    same sequence numbers, same advancing clock — so rounds stay paired
    even though the script mutates the beliefs.
    """
    config = config or FusedWakeupConfig()
    beliefs = {
        backend: build_wakeup_state(config, backend)
        for backend in ("vectorized", "fused")
    }
    best: dict[str, WakeupBackendResult] = {}
    rounds = max(1, rounds)
    wakes_per_round = config.decisions + 1  # + the untimed warm wake
    for round_index in range(rounds):
        seq_base = _BENCH_SEQ_BASE + round_index * wakes_per_round
        start = config.duration + round_index * (
            wakes_per_round * config.wake_interval
        )
        for backend in ("fused", "vectorized"):
            result = _time_wakeups(
                backend, beliefs[backend], config, seq_base, start
            )
            kept = best.get(backend)
            if kept is None or result.wall_time_s < kept.wall_time_s:
                best[backend] = result
    # Equivalence is judged on one final *paired* decide: both beliefs have
    # replayed the identical script through every round, so their end
    # states correspond — the per-backend best rounds need not.
    final_now = config.duration + rounds * wakes_per_round * config.wake_interval
    for backend in ("fused", "vectorized"):
        planner = ExpectedUtilityPlanner(
            config.alpha_utility,
            packet_bits=config.packet_bits,
            top_k=config.top_k,
            rollout_backend=backend,
        )
        decision = planner.decide(beliefs[backend], final_now)
        best[backend].chosen_delay = decision.delay
        best[backend].expected_utilities = dict(decision.expected_utilities)
    return FusedWakeupComparison(
        config=config, vectorized=best["vectorized"], fused=best["fused"]
    )


# ------------------------------------------------------- pooled sender decide


@dataclass(frozen=True)
class PoolBenchConfig:
    """Shape of the 64-sender aggregate-decide measurement."""

    senders: int = 64
    top_k: int = 8
    packet_bits: float = DEFAULT_PACKET_BITS
    #: Per-sender warm-up script length (sends with periodic acks).
    warmup_steps: int = 24
    #: Timed ``decide_all`` (or per-sender loop) passes.
    passes: int = 5
    #: Per-sender prior resolution: 7 rates × 3 fills = 21 hypotheses
    #: before forking — small enough that per-decide overhead, not raw
    #: lane arithmetic, dominates the per-sender loop (the regime the
    #: many-flow scenario is in).
    link_rate_points: int = 7
    fill_points: int = 3
    buffer_capacity_bits: float = 8_000_000.0


@dataclass
class PoolBackendResult:
    """Measurements from timing one aggregate-decide strategy."""

    strategy: str
    wall_time_s: float
    passes: int
    senders: int
    chosen_delays: list[float] = field(default_factory=list)


@dataclass
class PoolComparison:
    """Pooled ``decide_all`` vs the per-sender unfused decide loop."""

    config: PoolBenchConfig
    per_sender: PoolBackendResult
    pooled: PoolBackendResult

    @property
    def speedup(self) -> float:
        return self.per_sender.wall_time_s / self.pooled.wall_time_s

    @property
    def decisions_match(self) -> bool:
        return self.pooled.chosen_delays == self.per_sender.chosen_delays


def _pool_config(backend: str, config: PoolBenchConfig) -> SenderConfig:
    return SenderConfig(
        belief_backend=backend,
        rollout_backend=backend,
        policy="none",
        packet_bits=config.packet_bits,
        top_k=config.top_k,
    )


def _pool_priors(config: PoolBenchConfig):
    """Heterogeneous per-sender priors (each sender spans different rates)."""
    return [
        single_link_prior(
            link_rate_low=1.5e5 * (1 + index % 7),
            link_rate_high=1.5e6 * (1 + index % 7),
            link_rate_points=config.link_rate_points,
            buffer_capacity_bits=config.buffer_capacity_bits,
            fill_points=config.fill_points,
            packet_bits=config.packet_bits,
        )
        for index in range(config.senders)
    ]


def _warm_senders(parts_list: list[SenderParts], config: PoolBenchConfig) -> float:
    """Drive every sender through the identical send/ack script; return now."""
    now = 0.0
    for step in range(config.warmup_steps):
        now += 0.03 + 0.01 * (step % 5)
        for parts in parts_list:
            parts.belief.record_send(step, config.packet_bits, now)
        acks = []
        if step % 3 == 2:
            acks = [
                AckObservation(seq=step - 1, received_at=now - 0.004, ack_at=now)
            ]
        for parts in parts_list:
            parts.belief.update(now, acks)
    return now + 0.05


def run_pool_comparison(config: PoolBenchConfig | None = None) -> PoolComparison:
    """Time the pooled decide against the per-sender unfused loop.

    The per-sender baseline is the many-flow scenario's historical shape:
    N independent ``build_components`` senders, each deciding through the
    unfused vectorized engine.  The pooled side drives the same N senders
    (same priors, same warm-up script) through one
    ``BatchedSenderPool.decide_all`` — a single (sender × action ×
    hypothesis) frontier per pass.
    """
    config = config or PoolBenchConfig()
    baseline_parts = [
        build_components(_pool_config("vectorized", config), prior)
        for prior in _pool_priors(config)
    ]
    pool = BatchedSenderPool(_pool_config("fused", config), _pool_priors(config))
    now = _warm_senders(baseline_parts, config)
    assert _warm_senders(list(pool), config) == now

    # Warm both paths once (allocators, lazy imports) before timing.
    baseline_decisions = [
        parts.planner.decide(parts.belief, now) for parts in baseline_parts
    ]
    pooled_decisions = pool.decide_all(now)

    started = time.perf_counter()
    for _ in range(config.passes):
        baseline_decisions = [
            parts.planner.decide(parts.belief, now) for parts in baseline_parts
        ]
    per_sender_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(config.passes):
        pooled_decisions = pool.decide_all(now)
    pooled_elapsed = time.perf_counter() - started

    return PoolComparison(
        config=config,
        per_sender=PoolBackendResult(
            strategy="per_sender_vectorized",
            wall_time_s=per_sender_elapsed,
            passes=config.passes,
            senders=config.senders,
            chosen_delays=[decision.delay for decision in baseline_decisions],
        ),
        pooled=PoolBackendResult(
            strategy="pooled_fused",
            wall_time_s=pooled_elapsed,
            passes=config.passes,
            senders=config.senders,
            chosen_delays=[decision.delay for decision in pooled_decisions],
        ),
    )


def main() -> None:  # pragma: no cover - manual entry point
    wakeup = run_fused_wakeup_comparison()
    per_wake = 1000.0 / wakeup.config.decisions
    print(
        f"vectorized wake-up : {wakeup.vectorized.wall_time_s * per_wake:8.2f} ms"
    )
    print(f"fused wake-up      : {wakeup.fused.wall_time_s * per_wake:8.2f} ms")
    print(f"speedup            : {wakeup.speedup:8.2f} x")
    print(f"max |ΔU|           : {wakeup.max_utility_divergence:8.2e} (relative)")
    print(f"same action        : {wakeup.decisions_match}")
    pool = run_pool_comparison()
    per_pass = 1000.0 / pool.config.passes
    print(
        f"per-sender loop    : {pool.per_sender.wall_time_s * per_pass:8.2f} "
        f"ms/pass ({pool.config.senders} senders)"
    )
    print(f"pooled decide_all  : {pool.pooled.wall_time_s * per_pass:8.2f} ms/pass")
    print(f"aggregate speedup  : {pool.speedup:8.2f} x")
    print(f"same actions       : {pool.decisions_match}")


if __name__ == "__main__":  # pragma: no cover
    main()
