"""Deprecated experiment-facing shims over :mod:`repro.api`.

``SenderSettings`` was the experiments' pre-``repro.api`` configuration
carrier; it survives as a thin adapter that constructs the canonical
:class:`~repro.api.config.SenderConfig` (and warns).  ``attach_isender``
likewise forwards to :func:`~repro.api.sender.build_sender`, which is the
one construction path new code should call directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._deprecation import warn_deprecated
from repro.api.config import SenderConfig
from repro.api.sender import build_sender
from repro.core import ISender
from repro.core.utility import UtilityFunction
from repro.inference import Prior
from repro.topology.presets import Figure2Network, SingleLinkNetwork
from repro.units import DEFAULT_PACKET_BITS


@dataclass(frozen=True)
class SenderSettings:
    """Deprecated: construct a :class:`repro.api.SenderConfig` instead.

    Kept as a field-compatible adapter so existing call sites keep working;
    construction emits a :class:`DeprecationWarning` and :meth:`to_config`
    produces the equivalent ``SenderConfig`` (every build routes through
    :func:`repro.api.build_sender`, so the two spellings construct
    bit-identical senders).
    """

    alpha: float = 1.0
    discount_timescale: float = 20.0
    latency_penalty: float = 0.0
    kernel_sigma: float = 0.4
    max_hypotheses: int = 200
    top_k: int = 16
    packet_bits: float = DEFAULT_PACKET_BITS
    use_policy_cache: bool = False
    belief_backend: str = "scalar"
    rollout_backend: str = "scalar"

    def __post_init__(self) -> None:
        # warn_deprecated attributes the warning to the caller's own file and
        # line whichever way the shim was constructed (direct call,
        # dataclasses.replace, copy), so the default warning filter shows it
        # exactly once per call site.
        warn_deprecated(
            "SenderSettings is deprecated; construct a repro.api.SenderConfig "
            "and build senders with repro.api.build_sender",
            internal_files=(__file__,),
        )

    def to_config(self, prior: Prior | None = None) -> SenderConfig:
        """The canonical :class:`~repro.api.config.SenderConfig` equivalent."""
        return SenderConfig(
            prior=prior,
            alpha=self.alpha,
            discount_timescale=self.discount_timescale,
            latency_penalty=self.latency_penalty,
            kernel="gaussian",
            kernel_scale=self.kernel_sigma,
            max_hypotheses=self.max_hypotheses,
            top_k=self.top_k,
            packet_bits=self.packet_bits,
            belief_backend=self.belief_backend,
            rollout_backend=self.rollout_backend,
            policy="cache" if self.use_policy_cache else "none",
        )


def as_sender_config(settings: "SenderSettings | SenderConfig | None") -> SenderConfig:
    """Normalize the experiments' settings/config union to a SenderConfig."""
    if settings is None:
        return SenderConfig()
    if isinstance(settings, SenderConfig):
        return settings
    return settings.to_config()


def attach_isender(
    network: Figure2Network | SingleLinkNetwork,
    prior: Prior,
    settings: "SenderSettings | SenderConfig",
    utility: UtilityFunction | None = None,
    stop_time: float | None = None,
) -> ISender:
    """Deprecated shim: forwards to :func:`repro.api.build_sender`."""
    return build_sender(
        as_sender_config(settings),
        network,
        prior=prior,
        utility=utility,
        stop_time=stop_time,
    )
