"""Shared helpers for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AlphaWeightedUtility, ExpectedUtilityPlanner, ISender
from repro.core.utility import UtilityFunction
from repro.inference import BeliefState, GaussianKernel, Prior
from repro.topology.presets import Figure2Network, SingleLinkNetwork
from repro.units import DEFAULT_PACKET_BITS


@dataclass(frozen=True)
class SenderSettings:
    """Knobs of the model-based sender shared by several experiments.

    ``discount_timescale`` and ``horizon`` trade off how strongly the
    sender's utility weighs harm inflicted on cross traffic against its own
    immediate throughput; the defaults are the calibration used for the
    Figure-3 reproduction (see EXPERIMENTS.md).  ``belief_backend`` selects
    the inference engine: ``"scalar"`` (the per-object reference path) or
    ``"vectorized"`` (the NumPy struct-of-arrays ensemble).
    ``rollout_backend`` selects the planner's fan-out engine the same way:
    ``"scalar"`` rolls each (action × hypothesis) lane through a scalar
    model clone; ``"vectorized"`` advances all lanes as one batched event
    frontier (and, combined with ``belief_backend="vectorized"``, keeps the
    whole decide path free of scalar ``Hypothesis`` objects).
    """

    alpha: float = 1.0
    discount_timescale: float = 20.0
    latency_penalty: float = 0.0
    kernel_sigma: float = 0.4
    max_hypotheses: int = 200
    top_k: int = 16
    packet_bits: float = DEFAULT_PACKET_BITS
    use_policy_cache: bool = False
    belief_backend: str = "scalar"
    rollout_backend: str = "scalar"


def attach_isender(
    network: Figure2Network | SingleLinkNetwork,
    prior: Prior,
    settings: SenderSettings,
    utility: UtilityFunction | None = None,
    stop_time: float | None = None,
) -> ISender:
    """Create an ISender over ``prior`` and wire it into a preset network."""
    belief = BeliefState.from_prior(
        prior,
        kernel=GaussianKernel(sigma=settings.kernel_sigma),
        max_hypotheses=settings.max_hypotheses,
        backend=settings.belief_backend,
    )
    if utility is None:
        utility = AlphaWeightedUtility(
            alpha=settings.alpha,
            discount_timescale=settings.discount_timescale,
            latency_penalty=settings.latency_penalty,
        )
    planner = ExpectedUtilityPlanner(
        utility,
        packet_bits=settings.packet_bits,
        top_k=settings.top_k,
        rollout_backend=settings.rollout_backend,
    )
    sender = ISender(
        belief,
        planner,
        network.sender_receiver,
        flow=network.sender_flow,
        packet_bits=settings.packet_bits,
        stop_time=stop_time,
        use_policy_cache=settings.use_policy_cache,
    )
    sender.connect(network.entry)
    network.network.add(sender)
    return sender
