"""The planner hot-path benchmark: scalar vs. vectorized rollout backends.

PR 2 vectorized the belief update, which left the planner's (action ×
hypothesis) rollout fan-out as the dominant cost of full ISender runs.
This module measures that fan-out in isolation: it prepares one *loaded
decision state* — a belief warmed to the 512-hypothesis cap on a
deterministic Figure-3-style workload, then hit with a send burst so every
hypothesis carries a queued backlog at the decision time — and times
repeated ``ExpectedUtilityPlanner.decide`` calls (``top_k`` hypotheses ×
the default 9-delay action grid) through each rollout backend.

The warm-up prior concentrates its spread on loss, buffer capacity, and
initial fill — parameters that shape *outcomes* without desynchronizing
per-lane event rates — which is the planner's steady-state regime once the
link speed has been identified, and the regime the batched engine is built
for: every lane advances through a comparable number of events, so one
masked frontier iteration replaces ~``top_k × actions`` scalar events.

Used by ``benchmarks/bench_planner_rollout.py`` (which writes the
``BENCH_planner.json`` regression record) and runnable standalone::

    PYTHONPATH=src python -m repro.experiments.planner_bench
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import AlphaWeightedUtility, ExpectedUtilityPlanner
from repro.inference import BeliefState, GaussianKernel, figure3_prior
from repro.experiments.inference_bench import (
    SEND,
    InferenceBenchConfig,
    build_workload,
)
from repro.units import DEFAULT_PACKET_BITS


@dataclass(frozen=True)
class PlannerBenchConfig:
    """Shape of the loaded decision state and the timed fan-out."""

    top_k: int = 24
    max_hypotheses: int = 512
    #: Warm-up workload (shared with the inference bench machinery).
    duration: float = 12.0
    update_interval: float = 1.0
    send_interval: float = 0.5
    packet_bits: float = DEFAULT_PACKET_BITS
    true_link_rate_bps: float = 12_000.0
    true_cross_fraction: float = 0.7
    kernel_sigma: float = 0.4
    #: Send burst queued at the decision time (the loaded-sender regime).
    burst: int = 14
    #: Prior resolution: narrow on the (identified) link speed and cross
    #: fraction, wide on loss/buffer/fill — 2*2*8*4*2 = 512 configurations.
    link_rate_low: float = 11_000.0
    link_rate_high: float = 13_000.0
    link_rate_points: int = 2
    cross_fraction_low: float = 0.65
    cross_fraction_high: float = 0.7
    cross_fraction_points: int = 2
    loss_points: int = 8
    buffer_points: int = 4
    fill_points: int = 2
    #: Timed ``decide`` calls per round.
    decisions: int = 15

    @property
    def alpha_utility(self) -> AlphaWeightedUtility:
        """The Figure-3 utility used for every timed decision."""
        return AlphaWeightedUtility(alpha=1.0, discount_timescale=20.0)


@dataclass
class PlannerBackendResult:
    """Measurements from timing one rollout backend on the decision state."""

    rollout_backend: str
    wall_time_s: float
    decisions: int
    rollouts_performed: int
    hypotheses_evaluated: int
    chosen_delay: float
    horizon: float
    expected_utilities: dict[float, float] = field(default_factory=dict)


@dataclass
class PlannerComparison:
    """Both rollout backends on the identical decision state."""

    config: PlannerBenchConfig
    scalar: PlannerBackendResult
    vectorized: PlannerBackendResult

    @property
    def speedup(self) -> float:
        return self.scalar.wall_time_s / self.vectorized.wall_time_s

    @property
    def max_utility_divergence(self) -> float:
        """Largest relative expected-utility difference across the action grid."""
        scalar = self.scalar.expected_utilities
        vectorized = self.vectorized.expected_utilities
        if set(scalar) != set(vectorized):
            return float("inf")
        worst = 0.0
        for delay, value in scalar.items():
            scale = max(1.0, abs(value))
            worst = max(worst, abs(vectorized[delay] - value) / scale)
        return worst

    @property
    def decisions_match(self) -> bool:
        """Whether both backends chose the same action.

        Compared within the documented 1e-9 relative tolerance rather than
        bit-exactly: the two planners run over *different belief backends*,
        whose posteriors may differ by transcendental rounding (PR 2's
        contract), which can shift the derived delays in the last ulp.
        """

        def close(left: float, right: float) -> bool:
            return abs(left - right) <= 1e-9 * max(1.0, abs(left), abs(right))

        return close(self.scalar.chosen_delay, self.vectorized.chosen_delay) and close(
            self.scalar.horizon, self.vectorized.horizon
        )


def build_decision_state(config: PlannerBenchConfig, belief_backend: str) -> BeliefState:
    """A belief at the cap, converged and carrying a queued send burst."""
    workload = InferenceBenchConfig(
        max_hypotheses=config.max_hypotheses,
        duration=config.duration,
        update_interval=config.update_interval,
        send_interval=config.send_interval,
        packet_bits=config.packet_bits,
        true_link_rate_bps=config.true_link_rate_bps,
        true_cross_rate_pps=(
            config.true_cross_fraction * config.true_link_rate_bps / config.packet_bits
        ),
        kernel_sigma=config.kernel_sigma,
    )
    prior = figure3_prior(
        link_rate_low=config.link_rate_low,
        link_rate_high=config.link_rate_high,
        link_rate_points=config.link_rate_points,
        cross_fraction_low=config.cross_fraction_low,
        cross_fraction_high=config.cross_fraction_high,
        cross_fraction_points=config.cross_fraction_points,
        loss_points=config.loss_points,
        buffer_points=config.buffer_points,
        fill_points=config.fill_points,
        packet_bits=config.packet_bits,
    )
    belief = BeliefState.from_prior(
        prior,
        kernel=GaussianKernel(sigma=config.kernel_sigma),
        max_hypotheses=config.max_hypotheses,
        backend=belief_backend,
    )
    for kind, args in build_workload(workload):
        if kind == SEND:
            belief.record_send(*args)
        else:
            belief.update(*args)
    burst_base = 1_000_000  # clear of every warm-up sequence number
    for index in range(config.burst):
        belief.record_send(burst_base + index, config.packet_bits, config.duration)
    belief.update(config.duration)
    return belief


def time_backend(
    rollout_backend: str,
    belief: BeliefState,
    config: PlannerBenchConfig,
) -> PlannerBackendResult:
    """Time ``config.decisions`` repeated decides through one backend."""
    planner = ExpectedUtilityPlanner(
        config.alpha_utility,
        packet_bits=config.packet_bits,
        top_k=config.top_k,
        rollout_backend=rollout_backend,
    )
    now = config.duration
    decision = planner.decide(belief, now)  # warm caches and allocators
    planner.rollouts_performed = 0  # count the timed decisions only
    started = time.perf_counter()
    for _ in range(config.decisions):
        decision = planner.decide(belief, now)
    elapsed = time.perf_counter() - started
    return PlannerBackendResult(
        rollout_backend=rollout_backend,
        wall_time_s=elapsed,
        decisions=config.decisions,
        rollouts_performed=planner.rollouts_performed,
        hypotheses_evaluated=decision.hypotheses_evaluated,
        chosen_delay=decision.delay,
        horizon=decision.horizon,
        expected_utilities=dict(decision.expected_utilities),
    )


def run_planner_comparison(
    config: PlannerBenchConfig | None = None, rounds: int = 3
) -> PlannerComparison:
    """Time both rollout backends on one decision state; keep each one's best.

    The decision state is built once per belief backend — the vectorized
    planner runs over the vectorized belief (its no-materialization path),
    the scalar planner over the scalar belief — which PR 2's equivalence
    contract guarantees hold identical posteriors.  The *minimum* wall time
    over ``rounds`` is each backend's robust cost estimate.
    """
    config = config or PlannerBenchConfig()
    scalar_belief = build_decision_state(config, "scalar")
    vectorized_belief = build_decision_state(config, "vectorized")
    best: dict[str, PlannerBackendResult] = {}
    for _ in range(max(1, rounds)):
        for backend, belief in (
            ("vectorized", vectorized_belief),
            ("scalar", scalar_belief),
        ):
            result = time_backend(backend, belief, config)
            kept = best.get(backend)
            if kept is None or result.wall_time_s < kept.wall_time_s:
                best[backend] = result
    return PlannerComparison(
        config=config, scalar=best["scalar"], vectorized=best["vectorized"]
    )


def main() -> None:  # pragma: no cover - manual entry point
    comparison = run_planner_comparison()
    scalar, vectorized = comparison.scalar, comparison.vectorized
    per_decide = 1000.0 / scalar.decisions
    print(
        f"scalar     : {scalar.wall_time_s * per_decide:8.2f} ms/decide "
        f"({scalar.rollouts_performed} rollouts total)"
    )
    print(
        f"vectorized : {vectorized.wall_time_s * per_decide:8.2f} ms/decide "
        f"({vectorized.rollouts_performed} rollouts total)"
    )
    print(f"speedup    : {comparison.speedup:8.1f} x")
    print(f"max |ΔU|   : {comparison.max_utility_divergence:8.2e} (relative)")
    print(f"same action: {comparison.decisions_match}")


if __name__ == "__main__":  # pragma: no cover
    main()
