"""Canonical benchmark records (``BENCH_*.json``) and regression gates.

The benchmark suite under ``benchmarks/`` prints tables for humans; this
module gives those runs a durable, machine-checkable trajectory.  Each
benchmark family writes one ``BENCH_<name>.json`` at the repository root:

* ``entries`` — one record per measured configuration, each a flat dict of
  numeric metrics plus free-form metadata,
* ``gates`` — self-contained pass/fail conditions over those metrics
  (e.g. the vectorized inference backend must stay ≥5× the scalar path),

serialized canonically (sorted keys, fixed indentation, trailing newline)
so diffs against a committed baseline are meaningful.  ``benchmarks/
compare.py`` is the command-line gate: it re-checks a record's own gates
and, given a baseline file, flags wall-time regressions — so future PRs
cannot silently regress the hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

#: Record format version, bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: Metric-name suffixes treated as "lower is better" by regression checks.
TIME_METRIC_SUFFIXES = ("wall_time_s", "wall_time", "seconds", "_s")

#: Baseline wall times below this are noise-dominated across heterogeneous
#: machines (a hosted CI runner can be several times slower than the box
#: that committed the baseline) and are skipped by regression checks; the
#: machine-relative ratio gates still cover those entries.
MIN_COMPARABLE_BASELINE_S = 0.05


@dataclass
class GateFailure:
    """One violated condition, with everything needed to print a diagnosis."""

    entry: str
    metric: str
    message: str


@dataclass
class BenchRecord:
    """In-memory form of one ``BENCH_<name>.json`` file."""

    name: str
    entries: dict[str, dict] = field(default_factory=dict)
    gates: dict[str, dict] = field(default_factory=dict)

    # ----------------------------------------------------------------- editing

    def record(
        self,
        label: str,
        metrics: Mapping[str, float],
        meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Add or replace the entry ``label``."""
        entry: dict = {"metrics": {key: float(value) for key, value in metrics.items()}}
        if meta:
            entry["meta"] = dict(meta)
        self.entries[label] = entry

    def gate(self, entry: str, metric: str, minimum: float | None = None, maximum: float | None = None) -> None:
        """Require ``entry``'s ``metric`` to stay within the given bounds."""
        condition: dict = {}
        if minimum is not None:
            condition["min"] = float(minimum)
        if maximum is not None:
            condition["max"] = float(maximum)
        self.gates[f"{entry}.{metric}"] = condition

    # -------------------------------------------------------------------- I/O

    def to_payload(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "entries": self.entries,
            "gates": self.gates,
        }

    def write(self, path: str | Path) -> Path:
        """Serialize canonically (sorted keys, stable indentation)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchRecord":
        payload = json.loads(Path(path).read_text())
        record = cls(name=payload.get("name", Path(path).stem))
        record.entries = dict(payload.get("entries", {}))
        record.gates = dict(payload.get("gates", {}))
        return record

    # ------------------------------------------------------------------ checks

    def check_gates(self) -> list[GateFailure]:
        """Evaluate the record's own gates; empty list means all pass."""
        failures: list[GateFailure] = []
        for target, condition in sorted(self.gates.items()):
            entry_name, _, metric = target.rpartition(".")
            entry = self.entries.get(entry_name)
            value = None if entry is None else entry.get("metrics", {}).get(metric)
            if value is None:
                failures.append(
                    GateFailure(entry_name, metric, f"gated metric {target!r} is missing")
                )
                continue
            minimum = condition.get("min")
            maximum = condition.get("max")
            if minimum is not None and value < minimum:
                failures.append(
                    GateFailure(
                        entry_name,
                        metric,
                        f"{target} = {value:g} violates minimum {minimum:g}",
                    )
                )
            if maximum is not None and value > maximum:
                failures.append(
                    GateFailure(
                        entry_name,
                        metric,
                        f"{target} = {value:g} violates maximum {maximum:g}",
                    )
                )
        return failures

    def check_regressions(
        self,
        baseline: "BenchRecord",
        max_regression: float = 0.25,
        min_baseline: float = MIN_COMPARABLE_BASELINE_S,
    ) -> list[GateFailure]:
        """Compare time-like metrics against ``baseline``.

        A metric regresses when it exceeds the baseline by more than
        ``max_regression`` (fractional).  Entries or metrics absent from the
        baseline are skipped — new benchmarks are not regressions — as are
        baselines under ``min_baseline`` seconds, whose wall clocks don't
        transfer between machines (their ratio gates remain in force).
        """
        failures: list[GateFailure] = []
        for label, entry in sorted(self.entries.items()):
            base_entry = baseline.entries.get(label)
            if base_entry is None:
                continue
            base_metrics = base_entry.get("metrics", {})
            for metric, value in sorted(entry.get("metrics", {}).items()):
                if not metric.endswith(TIME_METRIC_SUFFIXES):
                    continue
                base_value = base_metrics.get(metric)
                if base_value is None or base_value <= 0:
                    continue
                if base_value < min_baseline:
                    continue
                limit = base_value * (1.0 + max_regression)
                if value > limit:
                    failures.append(
                        GateFailure(
                            label,
                            metric,
                            f"{label}.{metric} = {value:g} exceeds baseline "
                            f"{base_value:g} by more than {max_regression:.0%}",
                        )
                    )
        return failures


def update_bench_record(
    path: str | Path,
    name: str,
    entries: Mapping[str, tuple[Mapping[str, float], Optional[Mapping[str, object]]]],
    gates: Optional[Mapping[str, Optional[Mapping[str, float]]]] = None,
) -> BenchRecord:
    """Merge ``entries`` (and optional ``gates``) into the record at ``path``.

    Existing entries with other labels are preserved, so several benchmark
    tests can contribute to one ``BENCH_*.json`` file.  A gate mapped to
    ``None`` is *retracted* from the merged record (hardware-conditional
    gates use this to undo a gate written by a previous run).
    """
    path = Path(path)
    if path.exists():
        try:
            record = BenchRecord.load(path)
        except (ValueError, OSError):
            # Never silently discard accumulated entries: preserve the
            # unreadable file next to the fresh record and say so.
            backup = path.with_suffix(path.suffix + ".corrupt")
            path.replace(backup)
            print(f"warning: {path} was unreadable; preserved as {backup}")
            record = BenchRecord(name=name)
    else:
        record = BenchRecord(name=name)
    record.name = name
    for label, (metrics, meta) in entries.items():
        record.record(label, metrics, meta)
    if gates:
        for target, condition in gates.items():
            if condition is None:
                # Gates merge across runs, so a benchmark that stops
                # emitting a gate (e.g. a hardware-dependent speedup floor)
                # must be able to retract a stale one explicitly.
                record.gates.pop(target, None)
            else:
                record.gates[target] = dict(condition)
    record.write(path)
    return record
