"""Fairness and convergence metrics for many-flow contention scenarios.

When N senders share one bottleneck, per-flow throughput alone does not
answer the questions the paper's multi-user frontier asks: *how evenly* is
capacity shared, and *how quickly* does the share stabilize?  This module
provides the two standard answers:

* :func:`jain_index` — Jain's fairness index, ``(Σx)² / (n·Σx²)``, which is
  1.0 for a perfectly even allocation and ``1/n`` when one flow takes
  everything;
* :func:`convergence_time` — the earliest time from which the windowed
  Jain index stays above a threshold for the rest of the run.

:func:`flow_rate_matrix` builds the windowed per-flow rate series those
two consume from raw :class:`~repro.elements.receiver.Delivery` records.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = [
    "convergence_time",
    "flow_rate_matrix",
    "jain_index",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of an allocation.

    Ranges over ``[1/n, 1]`` for non-negative allocations: 1.0 when all
    shares are equal, ``1/n`` when a single flow takes everything.  Edge
    cases: an empty allocation has no flows to be unfair between and
    returns 0.0; an all-zero allocation is degenerate-equal (every flow
    got the same nothing) and returns 1.0.  A zero-throughput flow among
    active ones correctly drags the index down.
    """
    if not values:
        return 0.0
    total = float(sum(values))
    squares = float(sum(value * value for value in values))
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def flow_rate_matrix(
    deliveries_by_flow: Mapping[str, Sequence],
    start: float,
    end: float,
    window: float,
) -> tuple[list[float], dict[str, list[float]]]:
    """Windowed per-flow delivery rates over ``[start, end)``.

    Returns ``(window_starts, {flow: [rate_bps per window]})``, all flows
    sharing one window grid so the rows line up for
    :func:`convergence_time`.  Deliveries outside the interval are ignored.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window!r}")
    if end <= start:
        raise ValueError(f"end ({end!r}) must exceed start ({start!r})")
    count = int(math.ceil((end - start) / window))
    window_starts = [start + index * window for index in range(count)]
    rates: dict[str, list[float]] = {}
    for flow, deliveries in deliveries_by_flow.items():
        bits = [0.0] * count
        for delivery in deliveries:
            if start <= delivery.received_at < end:
                index = int((delivery.received_at - start) / window)
                bits[min(index, count - 1)] += delivery.size_bits
        rates[flow] = [b / window for b in bits]
    return window_starts, rates


def convergence_time(
    window_starts: Sequence[float],
    rates_by_flow: Mapping[str, Sequence[float]],
    threshold: float = 0.9,
) -> Optional[float]:
    """Earliest window start from which fairness stays converged.

    A run is *converged from* window ``i`` when the Jain index of the
    per-flow rates is at least ``threshold`` in window ``i`` and every
    later window.  Returns the start time of that window, or ``None``
    when the run never converges (including the no-flows/no-windows
    degenerate cases — with nothing measured, there is nothing to call
    converged).

    Scanning backward makes the cost one pass: the suffix property fails
    at the latest unfair window, and the answer is the window after it.
    """
    if not window_starts or not rates_by_flow:
        return None
    converged_from: Optional[float] = None
    for index in range(len(window_starts) - 1, -1, -1):
        allocation = [rates[index] for rates in rates_by_flow.values()]
        if jain_index(allocation) >= threshold:
            converged_from = window_starts[index]
        else:
            break
    return converged_from
