"""Time-series containers and the series the paper's figures plot.

* Figure 1 plots round-trip time against time for a TCP download.
* Figure 3 plots cumulative sequence number against time for the ISender.

:class:`TimeSeries` is a small immutable-ish container of ``(time, value)``
pairs with the resampling/windowing operations the benches need.  The module
also provides helpers for building the standard series from receiver
delivery records.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.elements.receiver import Delivery


@dataclass(frozen=True)
class TimeSeries:
    """A sequence of ``(time, value)`` samples ordered by time."""

    times: tuple[float, ...]
    values: tuple[float, ...]

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "TimeSeries":
        """Build a series from an iterable of ``(time, value)`` pairs."""
        ordered = sorted(pairs, key=lambda pair: pair[0])
        times = tuple(t for t, _ in ordered)
        values = tuple(v for _, v in ordered)
        return cls(times=times, values=values)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def is_empty(self) -> bool:
        """Whether the series has no samples."""
        return len(self.times) == 0

    # ------------------------------------------------------------- selection

    def between(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return TimeSeries(times=self.times[lo:hi], values=self.values[lo:hi])

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Last value at or before ``time`` (step interpolation)."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return default
        return self.values[index]

    # ------------------------------------------------------------ statistics

    def max(self) -> float:
        """Largest value (raises on an empty series)."""
        return max(self.values)

    def min(self) -> float:
        """Smallest value (raises on an empty series)."""
        return min(self.values)

    def mean(self) -> float:
        """Arithmetic mean of the values (raises on an empty series)."""
        if not self.values:
            raise ValueError("cannot take the mean of an empty series")
        return sum(self.values) / len(self.values)

    def percentile(self, fraction: float) -> float:
        """Value at the given fraction (0..1) using nearest-rank."""
        if not self.values:
            raise ValueError("cannot take a percentile of an empty series")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], got {fraction!r}")
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    # ------------------------------------------------------------ transforms

    def windowed(self, window: float, reducer=None) -> "TimeSeries":
        """Reduce the series into consecutive windows of ``window`` seconds.

        The reducer receives the list of values in each non-empty window and
        defaults to the mean.  The output sample is stamped at the window
        start.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if self.is_empty():
            return self
        if reducer is None:
            reducer = lambda values: sum(values) / len(values)
        start = math.floor(self.times[0] / window) * window
        buckets: dict[float, list[float]] = {}
        for time, value in self:
            key = start + math.floor((time - start) / window) * window
            buckets.setdefault(key, []).append(value)
        pairs = [(key, reducer(values)) for key, values in sorted(buckets.items())]
        return TimeSeries.from_pairs(pairs)

    def differences(self) -> "TimeSeries":
        """First differences of the values (stamped at the later time)."""
        pairs = [
            (self.times[i], self.values[i] - self.values[i - 1]) for i in range(1, len(self.times))
        ]
        return TimeSeries.from_pairs(pairs)


# --------------------------------------------------------------------------
# Figure-specific helpers
# --------------------------------------------------------------------------


def sequence_series(deliveries: Sequence[Delivery]) -> TimeSeries:
    """Cumulative delivered-packet count vs. time (Figure 3's y-axis)."""
    ordered = sorted(deliveries, key=lambda d: d.received_at)
    return TimeSeries.from_pairs(
        (delivery.received_at, index + 1) for index, delivery in enumerate(ordered)
    )


def rtt_series(samples: Iterable[tuple[float, float]]) -> TimeSeries:
    """Round-trip-time samples vs. time (Figure 1's y-axis)."""
    return TimeSeries.from_pairs(samples)


def windowed_rate(deliveries: Sequence[Delivery], window: float, end_time: float) -> TimeSeries:
    """Delivered bits per second in consecutive windows of ``window`` seconds."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window!r}")
    buckets: dict[float, float] = {}
    for delivery in deliveries:
        key = math.floor(delivery.received_at / window) * window
        buckets[key] = buckets.get(key, 0.0) + delivery.size_bits
    pairs = []
    t = 0.0
    while t < end_time:
        pairs.append((t, buckets.get(t, 0.0) / window))
        t += window
    return TimeSeries.from_pairs(pairs)
