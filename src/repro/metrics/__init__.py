"""Measurement utilities shared by experiments, benches, and examples."""

from repro.metrics.fairness import convergence_time, flow_rate_matrix, jain_index
from repro.metrics.flowstats import FlowStats, flow_stats_from_receiver
from repro.metrics.summary import ExperimentRow, format_table
from repro.metrics.timeseries import TimeSeries, rtt_series, sequence_series, windowed_rate

__all__ = [
    "ExperimentRow",
    "FlowStats",
    "TimeSeries",
    "convergence_time",
    "flow_rate_matrix",
    "flow_stats_from_receiver",
    "format_table",
    "jain_index",
    "rtt_series",
    "sequence_series",
    "windowed_rate",
]
