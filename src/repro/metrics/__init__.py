"""Measurement utilities shared by experiments, benches, and examples."""

from repro.metrics.flowstats import FlowStats, flow_stats_from_receiver
from repro.metrics.summary import ExperimentRow, format_table
from repro.metrics.timeseries import TimeSeries, rtt_series, sequence_series, windowed_rate

__all__ = [
    "ExperimentRow",
    "FlowStats",
    "TimeSeries",
    "flow_stats_from_receiver",
    "format_table",
    "rtt_series",
    "sequence_series",
    "windowed_rate",
]
