"""Tabular experiment output.

Every experiment returns a list of :class:`ExperimentRow` objects — one per
reported cell or series point — and the benches print them with
:func:`format_table` so the console output mirrors the rows/series the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(slots=True)
class ExperimentRow:
    """One row of an experiment's output table."""

    label: str
    values: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Value of one column, with a default."""
        return self.values.get(key, default)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[ExperimentRow], columns: Iterable[str] | None = None, title: str | None = None) -> str:
    """Render rows as a fixed-width text table.

    Parameters
    ----------
    rows:
        The rows to print.
    columns:
        Column order; defaults to the union of the rows' keys in first-seen
        order.
    title:
        Optional heading printed above the table.
    """
    if columns is None:
        seen: list[str] = []
        for row in rows:
            for key in row.values:
                if key not in seen:
                    seen.append(key)
        columns = seen
    columns = list(columns)

    header = ["label", *columns]
    body: list[list[str]] = []
    for row in rows:
        body.append([row.label, *[_format_value(row.values.get(col, "")) for col in columns]])

    widths = [len(col) for col in header]
    for line in body:
        for index, cell in enumerate(line):
            widths[index] = max(widths[index], len(cell))

    def fmt_line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(header))
    lines.append(fmt_line(["-" * width for width in widths]))
    lines.extend(fmt_line(line) for line in body)
    return "\n".join(lines)
