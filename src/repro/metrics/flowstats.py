"""Per-flow aggregate statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.elements.receiver import Delivery, Receiver


@dataclass(frozen=True)
class FlowStats:
    """Summary statistics for one flow over an observation interval."""

    flow: str
    packets_delivered: int
    bits_delivered: float
    duration: float
    mean_delay: float | None
    max_delay: float | None
    min_delay: float | None

    @property
    def throughput_bps(self) -> float:
        """Average goodput over the observation interval."""
        if self.duration <= 0:
            return 0.0
        return self.bits_delivered / self.duration

    @property
    def packets_per_second(self) -> float:
        """Average delivery rate in packets per second."""
        if self.duration <= 0:
            return 0.0
        return self.packets_delivered / self.duration


def flow_stats(
    deliveries: Sequence[Delivery],
    flow: str,
    start: float,
    end: float,
) -> FlowStats:
    """Compute :class:`FlowStats` for ``flow`` over ``[start, end)``."""
    rows = [d for d in deliveries if d.flow == flow and start <= d.received_at < end]
    delays = [d.delay for d in rows]
    return FlowStats(
        flow=flow,
        packets_delivered=len(rows),
        bits_delivered=sum(d.size_bits for d in rows),
        duration=end - start,
        mean_delay=(sum(delays) / len(delays)) if delays else None,
        max_delay=max(delays) if delays else None,
        min_delay=min(delays) if delays else None,
    )


def flow_stats_from_receiver(
    receiver: Receiver,
    flow: str,
    start: float,
    end: float,
) -> FlowStats:
    """Convenience wrapper over :func:`flow_stats` for a Receiver element."""
    return flow_stats(receiver.deliveries, flow=flow, start=start, end=end)
